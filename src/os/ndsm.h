/**
 * @file
 * N-domain software DSM — the paper's §11 extension implemented.
 *
 * "For N domains (N being moderate), K2 can be extended without
 * structural changes: the DSM (§6.3) will track page ownership among
 * N domains as in [17]..."
 *
 * This generalises the two-kernel Dsm to N kernels: each page has one
 * *owner* kernel; a non-owner that needs the page sends GetExclusive
 * to the current owner (ownership is tracked in a directory that every
 * kernel's replica keeps in sync — here modelled as the simulator-side
 * table, with the directory-lookup cost charged per fault). The owner
 * flushes, invalidates, and replies PutExclusive directly to the
 * requester; the mailbox Mail carries the sender domain, so no
 * third-party forwarding is needed. The one-writer invariant holds
 * across all N kernels.
 *
 * Asymmetric priorities generalise too: the strong (index 0) kernel
 * services requests in a bottom half; all weak kernels serve
 * immediately.
 */

#ifndef K2_OS_NDSM_H
#define K2_OS_NDSM_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "soc/mmu.h"
#include "soc/soc.h"
#include "kern/kernel.h"
#include "os/messages.h"
#include "os/system.h"

namespace k2 {

namespace obs {
class MetricsRegistry;
}

namespace os {

class NDsm
{
  public:
    /** Per-fault cost constants, per kernel. */
    struct Costs
    {
        sim::Duration faultEntry;
        sim::Duration protocolExec;
        sim::Duration serviceBase;
        sim::Duration exitRefill;
    };

    /**
     * Fault-grant retry policy (mirrors Dsm::RetryPolicy). With a
     * nonzero timeout a faulting kernel re-sends its GetExclusive --
     * to the page's *current* owner, re-read from the directory -- so
     * a fault stranded on a crashed owner self-heals once the page is
     * reclaimed to a survivor (reclaimFrom) or the owner revives.
     */
    struct RetryPolicy
    {
        sim::Duration timeout = 0;  //!< 0 disables retry.
        sim::Duration maxTimeout = 0;
    };

    /**
     * @param soc Platform.
     * @param kernels One kernel per coherence domain, strong first.
     * @param num_pages DSM page keys available.
     */
    NDsm(soc::Soc &soc, std::vector<kern::Kernel *> kernels,
         std::uint64_t num_pages);

    void setRetryPolicy(RetryPolicy p) { retry_ = p; }

    std::size_t numKernels() const { return kernels_.size(); }

    /** Reserve a range of DSM page keys. */
    kern::PageRange allocRegion(std::uint64_t pages);

    /** Access a page from @p kern; faults transfer ownership. */
    sim::Task<void> access(kern::Kernel &kern, soc::Core &core,
                           std::uint64_t page, Access rw);

    /** Mail dispatch (GetExclusive/PutExclusive). */
    sim::Task<void> handleMail(std::size_t to_kernel, soc::Mail mail,
                               soc::Core &core);

    /** Current owner of @p page. */
    std::size_t ownerOf(std::uint64_t page) const;

    /**
     * Reassign every page owned by the (crashed) kernel @p dead to
     * @p to, in ascending page order, and return the moved page keys.
     * Faults left outstanding against the dead owner are *not*
     * completed here: the requester's retry re-reads the directory and
     * lands on the new owner (arm a RetryPolicy before injecting
     * crashes).
     */
    std::vector<std::uint64_t> reclaimFrom(std::size_t dead,
                                           std::size_t to);

    /** @name Statistics. @{ */
    std::uint64_t faults(std::size_t kernel) const
    {
        return stats_.at(kernel).faults.value();
    }

    double
    meanFaultUs(std::size_t kernel) const
    {
        return stats_.at(kernel).totalUs.mean();
    }

    std::uint64_t messagesSent() const { return messages_.value(); }
    std::uint64_t retries() const { return retries_.value(); }
    /** @} */

    /** Register stats under @p prefix (e.g. "os.ndsm"). */
    void registerMetrics(obs::MetricsRegistry &reg,
                         const std::string &prefix);

    /** Capture/restore: per-page ownership (post-capture pages are
     *  dropped), MMU state, statistics, and the sequence counter. */
    void snapState(snap::Io &io);

  private:
    struct PageInfo
    {
        std::size_t owner = 0;
        bool outstanding = false;    //!< A fault is in flight.
        bool grantArrived = false;   //!< Grant received for the fault.
        std::size_t requester = 0;   //!< Which kernel is faulting.
        std::unique_ptr<sim::Event> grant;
        std::unique_ptr<sim::Event> settled;
        sim::Duration lastServiceTime = 0;
    };

    struct Stats
    {
        sim::Counter faults;
        sim::Accumulator totalUs;
    };

    PageInfo &info(std::uint64_t page);
    std::size_t idxOf(const kern::Kernel &k) const;
    sim::Task<void> serviceGet(std::size_t owner, std::size_t requester,
                               std::uint64_t page);

    soc::Soc &soc_;
    std::vector<kern::Kernel *> kernels_;
    std::vector<Costs> costs_;
    std::vector<std::unique_ptr<soc::Mmu>> mmus_;
    std::uint64_t numPages_;
    std::uint64_t nextRegionPage_ = 0;
    std::unordered_map<std::uint64_t, std::unique_ptr<PageInfo>> pages_;
    std::vector<Stats> stats_;
    sim::Counter messages_;
    sim::Counter retries_;
    RetryPolicy retry_{};
    std::uint32_t seq_ = 0;
};

} // namespace os
} // namespace k2

#endif // K2_OS_NDSM_H
