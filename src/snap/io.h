/**
 * @file
 * Symmetric byte archive for warm-state snapshots.
 *
 * One snapState(Io &) method per component describes its semantic
 * state once; the same code path serialises it on capture and writes
 * it back on restore, so the two directions cannot drift apart.
 *
 * The archive distinguishes *semantic* state (values that are copied:
 * clocks, counters, RNG streams, queue contents) from *structural*
 * state (host-side objects that must already exist and match: parked
 * coroutine frames, registered handlers, track registrations).
 * Structural facts are recorded with check(), which stores the value
 * on capture and fails fast on restore when the target instance does
 * not line up -- restoring into a structurally different instance is
 * a usage error, not a silent corruption.
 *
 * Snapshots are position-independent in-memory images: they contain
 * no host pointers except trace-span name literals (which outlive the
 * process image), so they may be restored into the captured instance
 * any number of times, from any host thread. They are not a durable
 * on-disk format.
 */

#ifndef K2_SNAP_IO_H
#define K2_SNAP_IO_H

#include <cstdint>
#include <cstring>
#include <deque>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/log.h"

namespace k2 {
namespace snap {

class Io
{
  public:
    enum class Mode
    {
        Capture, //!< Append the component's state to the byte image.
        Restore, //!< Write the byte image back into the component.
    };

    /** Capture constructor: appends to @p out. */
    explicit Io(std::vector<std::uint8_t> &out)
        : mode_(Mode::Capture), out_(&out)
    {}

    /** Restore constructor: reads from @p in. */
    explicit Io(const std::vector<std::uint8_t> &in)
        : mode_(Mode::Restore), rd_(in.data()), end_(in.data() + in.size())
    {}

    Io(const Io &) = delete;
    Io &operator=(const Io &) = delete;

    Mode mode() const { return mode_; }
    bool capturing() const { return mode_ == Mode::Capture; }
    bool restoring() const { return mode_ == Mode::Restore; }

    /** Raw bytes, fixed length both ways. */
    void
    bytes(void *p, std::size_t n)
    {
        if (capturing()) {
            const auto *b = static_cast<const std::uint8_t *>(p);
            out_->insert(out_->end(), b, b + n);
        } else {
            need(n);
            std::memcpy(p, rd_, n);
            rd_ += n;
        }
    }

    /** A trivially copyable value. */
    template <typename T>
    void
    pod(T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "pod() requires a trivially copyable type");
        bytes(&v, sizeof(T));
    }

    /**
     * A size prefix: capture stores @p n and returns it; restore
     * ignores @p n and returns the stored value. Callers resize their
     * container to the returned count before streaming elements.
     */
    std::uint64_t
    count(std::uint64_t n)
    {
        pod(n);
        return n;
    }

    /**
     * A structural invariant: capture records @p v; restore fails fast
     * when the target instance disagrees. Use for waiter counts,
     * element counts of structures that must already exist, ids.
     */
    void
    check(std::uint64_t v, const char *what)
    {
        std::uint64_t stored = v;
        pod(stored);
        if (restoring() && stored != v) {
            K2_FATAL("snapshot restore: structural mismatch on %s "
                     "(snapshot %llu, instance %llu)",
                     what, static_cast<unsigned long long>(stored),
                     static_cast<unsigned long long>(v));
        }
    }

    void
    str(std::string &s)
    {
        std::uint64_t n = count(s.size());
        if (restoring())
            s.resize(static_cast<std::size_t>(n));
        if (n > 0)
            bytes(s.data(), static_cast<std::size_t>(n));
    }

    template <typename T>
    void
    podVec(std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        std::uint64_t n = count(v.size());
        if (restoring())
            v.resize(static_cast<std::size_t>(n));
        if (n > 0)
            bytes(v.data(), static_cast<std::size_t>(n) * sizeof(T));
    }

    template <typename T>
    void
    podDeque(std::deque<T> &d)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        std::uint64_t n = count(d.size());
        if (restoring()) {
            d.clear();
            d.resize(static_cast<std::size_t>(n));
        }
        for (auto &e : d)
            pod(e);
    }

    /** Restore epilogue: the image must be consumed exactly. */
    void
    finish() const
    {
        if (restoring() && rd_ != end_) {
            K2_FATAL("snapshot restore: %llu trailing bytes "
                     "(layout mismatch between capture and restore)",
                     static_cast<unsigned long long>(end_ - rd_));
        }
    }

  private:
    void
    need(std::size_t n) const
    {
        if (static_cast<std::size_t>(end_ - rd_) < n)
            K2_FATAL("snapshot restore: image truncated");
    }

    Mode mode_;
    std::vector<std::uint8_t> *out_ = nullptr;
    const std::uint8_t *rd_ = nullptr;
    const std::uint8_t *end_ = nullptr;
};

} // namespace snap
} // namespace k2

#endif // K2_SNAP_IO_H
