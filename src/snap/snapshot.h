/**
 * @file
 * Warm-state snapshot of a quiesced simulation.
 *
 * Snapshot::of() captures any object exposing snapState(snap::Io &)
 * -- in practice a wl::Testbed, an os::SystemImage, or a raw
 * sim::Engine -- into a compact in-memory byte image; restore() writes
 * that image back, returning the instance to the captured state.
 * Restoring is the "fork" operation of the boot-once sweep mode:
 * instead of duplicating host objects, the captured instance itself is
 * rewound, which is equivalent to handing out a fresh warm clone
 * because *all* semantic state (simulated clock, event-pool free-list
 * permutation, RNG streams, energy accumulators, tracer cursors,
 * service state, disk blocks) is rewritten exactly.
 *
 * Preconditions (asserted by the component snapState methods):
 *  - The engine is quiescent: Engine::run() returned, the event heap
 *    is empty and no live records remain. All scheduler core loops are
 *    parked, all threads are Blocked or Done, no DSM fault, DMA
 *    transfer, or reliable-mail exchange is in flight.
 *  - Restore targets the instance the snapshot was captured from (or
 *    one whose structural history extends it): objects that only ever
 *    grow (kernel thread tables, processes, DSM page infos, tracer
 *    tracks) are pruned back to the captured prefix; they are never
 *    recreated from bytes.
 *
 * See DESIGN.md §10 for the full model.
 */

#ifndef K2_SNAP_SNAPSHOT_H
#define K2_SNAP_SNAPSHOT_H

#include <cstdint>
#include <utility>
#include <vector>

#include "snap/io.h"

namespace k2 {
namespace snap {

class Snapshot
{
  public:
    Snapshot() = default;

    /** Capture @p target's state (it must be quiesced). */
    template <typename T>
    static Snapshot
    of(T &target)
    {
        Snapshot s;
        Io io(s.bytes_);
        target.snapState(io);
        return s;
    }

    /** Rewind @p target to the captured state. */
    template <typename T>
    void
    restore(T &target) const
    {
        K2_ASSERT(!bytes_.empty());
        Io io(bytes_);
        target.snapState(io);
        io.finish();
    }

    bool empty() const { return bytes_.empty(); }

    /** Image size in bytes (compactness metric). */
    std::size_t sizeBytes() const { return bytes_.size(); }

    /** Byte-level image comparison (round-trip tests). */
    bool operator==(const Snapshot &other) const = default;

  private:
    std::vector<std::uint8_t> bytes_;
};

} // namespace snap
} // namespace k2

#endif // K2_SNAP_SNAPSHOT_H
