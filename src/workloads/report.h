/**
 * @file
 * Plain-text table rendering for the benchmark harnesses, so each
 * bench binary prints rows shaped like the paper's tables and figures.
 */

#ifndef K2_WORKLOADS_REPORT_H
#define K2_WORKLOADS_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

namespace k2 {

namespace obs {
class MetricsSnapshot;
}

namespace wl {

/** A fixed-column text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row (must match the header count). */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format helpers. NaN (an empty accumulator's min/max, or a diffed
 *  interval's percentiles) renders as "-". @{ */
std::string fmt(double v, int decimals = 1);
std::string fmtBytes(std::uint64_t bytes);
/** @} */

/** Print a section banner for a bench. */
void banner(const std::string &title);

/**
 * Render a per-episode report from a metrics delta (the diff of two
 * registry snapshots bracketing the episode): the Table 5-style DSM
 * fault breakdown, the per-rail energy split, and a service-activity
 * summary. Sections whose metrics are absent (e.g. "os.dsm.*" on the
 * baseline) are omitted.
 */
std::string episodeReport(const obs::MetricsSnapshot &delta);

} // namespace wl
} // namespace k2

#endif // K2_WORKLOADS_REPORT_H
