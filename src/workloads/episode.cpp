#include "workloads/episode.h"

#include "sim/log.h"

namespace k2 {
namespace wl {

namespace {

EpisodeResult
runEpisodeImpl(os::SystemImage &sys, kern::Process &proc,
               const std::string &name, Workload workload,
               bool nightwatch)
{
    sim::Engine &eng = sys.engine();

    // Quiesce: drain everything pending (boot work, previous episodes,
    // inactive-timer transitions).
    eng.run();

    const auto snap = sys.soc().meter().snapshot();
    const sim::Time start = eng.now();

    EpisodeResult res;
    sim::Time done_at = 0;
    auto body = [&, workload](kern::Thread &t) -> sim::Task<void> {
        res.bytes = co_await workload(t);
        done_at = eng.now();
    };

    if (nightwatch)
        sys.spawnNightWatch(proc, name, body);
    else
        sys.spawnNormal(proc, name, body);

    // Run through the workload and the full idle tail (the engine goes
    // quiet only after the last inactive transition).
    eng.run();

    K2_ASSERT(done_at != 0);
    res.runTime = done_at - start;
    res.episodeTime = eng.now() - start;
    res.energyUj = snap.totalUj(sys.soc().meter());
    if (eng.tracer().spansOn()) {
        const sim::TrackId track = eng.tracer().addTrack("wl.episode");
        eng.tracer().spanCompleteStr(start, res.episodeTime, track,
                                     "episode", name);
    }
    return res;
}

} // namespace

EpisodeResult
runEpisode(os::SystemImage &sys, kern::Process &proc,
           const std::string &name, Workload workload)
{
    return runEpisodeImpl(sys, proc, name, std::move(workload), true);
}

EpisodeResult
runEpisodeNormal(os::SystemImage &sys, kern::Process &proc,
                 const std::string &name, Workload workload)
{
    return runEpisodeImpl(sys, proc, name, std::move(workload), false);
}

EpisodeResult
runEpisodeWarm(os::SystemImage &sys, kern::Process &proc,
               const std::string &name, Workload workload, int warmups)
{
    for (int i = 0; i < warmups; ++i)
        runEpisodeImpl(sys, proc, name + "-warmup", workload, true);
    return runEpisodeImpl(sys, proc, name, std::move(workload), true);
}

} // namespace wl
} // namespace k2
