#include "workloads/sweep.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

namespace k2 {
namespace wl {

struct SweepRunner::CellState
{
    Cell fn;
    std::string out;           //!< Captured inform() text.
    std::string err;           //!< Captured warn()/trace() text.
    std::exception_ptr error;  //!< Set if the cell threw.
};

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs ? jobs
                 : std::max(1u, std::thread::hardware_concurrency())),
      cellLevel_(sim::logLevel())
{
}

SweepRunner::~SweepRunner() = default;

std::size_t
SweepRunner::size() const
{
    return cells_.size();
}

std::size_t
SweepRunner::submit(Cell cell)
{
    cells_.push_back(CellState{std::move(cell), {}, {}, nullptr});
    return cells_.size() - 1;
}

void
SweepRunner::runCell(CellState &cell)
{
    // Thread-confined log configuration: the cell's engine(s) log at
    // cellLevel_ into the cell's private buffers, so concurrent cells
    // never share the log knob or interleave output.
    sim::ScopedLogConfig scope(cellLevel_, &cell.out, &cell.err);
    try {
        cell.fn();
    } catch (...) {
        cell.error = std::current_exception();
    }
}

void
SweepRunner::run()
{
    if (cells_.empty())
        return;

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, cells_.size()));

    if (workers <= 1) {
        // Serial reference behaviour: the calling thread runs every
        // cell in submission order (still under capture, so the
        // emitted bytes match the parallel path exactly).
        for (CellState &cell : cells_)
            runCell(cell);
    } else {
        // Work-stealing pool: cells are dealt round-robin into
        // per-worker deques; a worker pops from the front of its own
        // deque and, when empty, steals from the back of another's.
        // Stealing only changes *which thread* runs a cell -- never
        // what the cell computes or where its output lands -- so the
        // schedule is free to be nondeterministic while every
        // artifact stays byte-identical.
        struct WorkQueue
        {
            std::mutex mu;
            std::deque<std::size_t> q;
        };
        std::vector<WorkQueue> queues(workers);
        for (std::size_t i = 0; i < cells_.size(); ++i)
            queues[i % workers].q.push_back(i);

        auto workerBody = [this, &queues, workers](unsigned self) {
            for (;;) {
                std::size_t idx;
                bool found = false;
                {
                    WorkQueue &own = queues[self];
                    std::lock_guard<std::mutex> lock(own.mu);
                    if (!own.q.empty()) {
                        idx = own.q.front();
                        own.q.pop_front();
                        found = true;
                    }
                }
                for (unsigned v = 1; !found && v < workers; ++v) {
                    WorkQueue &victim = queues[(self + v) % workers];
                    std::lock_guard<std::mutex> lock(victim.mu);
                    if (!victim.q.empty()) {
                        idx = victim.q.back();
                        victim.q.pop_back();
                        found = true;
                    }
                }
                if (!found)
                    return; // all queues drained; no new work appears
                runCell(cells_[idx]);
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(workerBody, w);
        for (std::thread &t : pool)
            t.join();
    }

    // Replay captured output in submission order, then surface the
    // first failure. Replay happens even when a cell failed, so a
    // fatal cell's context is visible before the throw. Routing via
    // logToOut/logToErr keeps replay composable: a caller that is
    // itself running under a ScopedLogConfig captures the replayed
    // text instead of it hitting the real streams.
    for (CellState &cell : cells_) {
        if (!cell.out.empty())
            sim::logToOut(cell.out);
        if (!cell.err.empty())
            sim::logToErr(cell.err);
    }
    std::fflush(stdout);

    std::exception_ptr first;
    for (CellState &cell : cells_) {
        if (cell.error) {
            first = cell.error;
            break;
        }
    }
    cells_.clear();
    if (first)
        std::rethrow_exception(first);
}

unsigned
parseJobsFlag(int &argc, char **argv, unsigned fallback)
{
    for (int i = 1; i < argc; ++i) {
        static constexpr const char kFlag[] = "--jobs=";
        if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) != 0)
            continue;
        const char *value = argv[i] + sizeof(kFlag) - 1;
        char *end = nullptr;
        const unsigned long n = std::strtoul(value, &end, 10);
        if (end == value || *end != '\0' || n == 0 || n > 4096)
            K2_FATAL("--jobs expects an integer in [1, 4096], got '%s'",
                     value);
        for (int j = i; j + 1 < argc; ++j)
            argv[j] = argv[j + 1];
        --argc;
        return static_cast<unsigned>(n);
    }
    return fallback;
}

std::string
parseFaultsFlag(int &argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        static constexpr const char kFlag[] = "--faults=";
        if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) != 0)
            continue;
        const std::string spec = argv[i] + sizeof(kFlag) - 1;
        if (spec.empty())
            K2_FATAL("--faults expects a fault spec, e.g. "
                     "--faults=mailbox.drop:p=1e-3");
        for (int j = i; j + 1 < argc; ++j)
            argv[j] = argv[j + 1];
        --argc;
        return spec;
    }
    return {};
}

} // namespace wl
} // namespace k2
