#include "workloads/sweep.h"

#include "os/coherence/protocol.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

namespace k2 {
namespace wl {

struct SweepRunner::CellState
{
    LaneCell fn;               //!< Plain cells wrap to ignore the lane.
    std::string out;           //!< Captured inform() text.
    std::string err;           //!< Captured warn()/trace() text.
    std::exception_ptr error;  //!< Set if the cell threw.
};

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs ? jobs
                 : std::max(1u, std::thread::hardware_concurrency())),
      cellLevel_(sim::logLevel())
{
}

SweepRunner::~SweepRunner() = default;

std::size_t
SweepRunner::size() const
{
    return cells_.size();
}

std::size_t
SweepRunner::submit(Cell cell)
{
    return submitLane(
        [fn = std::move(cell)](std::size_t) { fn(); });
}

std::size_t
SweepRunner::submitLane(LaneCell cell)
{
    cells_.push_back(CellState{std::move(cell), {}, {}, nullptr});
    return cells_.size() - 1;
}

void
SweepRunner::runCell(CellState &cell, std::size_t lane)
{
    // Thread-confined log configuration: the cell's engine(s) log at
    // cellLevel_ into the cell's private buffers, so concurrent cells
    // never share the log knob or interleave output.
    sim::ScopedLogConfig scope(cellLevel_, &cell.out, &cell.err);
    try {
        cell.fn(lane);
    } catch (...) {
        cell.error = std::current_exception();
    }
}

void
SweepRunner::run()
{
    if (cells_.empty())
        return;

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, cells_.size()));

    if (workers <= 1) {
        // Serial reference behaviour: the calling thread runs every
        // cell in submission order (still under capture, so the
        // emitted bytes match the parallel path exactly).
        for (CellState &cell : cells_)
            runCell(cell, 0);
    } else {
        // Work-stealing pool: cells are dealt round-robin into
        // per-worker deques; a worker pops from the front of its own
        // deque and, when empty, steals from the back of another's.
        // Stealing only changes *which thread* runs a cell -- never
        // what the cell computes or where its output lands -- so the
        // schedule is free to be nondeterministic while every
        // artifact stays byte-identical.
        struct WorkQueue
        {
            std::mutex mu;
            std::deque<std::size_t> q;
        };
        std::vector<WorkQueue> queues(workers);
        for (std::size_t i = 0; i < cells_.size(); ++i)
            queues[i % workers].q.push_back(i);

        auto workerBody = [this, &queues, workers](unsigned self) {
            for (;;) {
                std::size_t idx;
                bool found = false;
                {
                    WorkQueue &own = queues[self];
                    std::lock_guard<std::mutex> lock(own.mu);
                    if (!own.q.empty()) {
                        idx = own.q.front();
                        own.q.pop_front();
                        found = true;
                    }
                }
                for (unsigned v = 1; !found && v < workers; ++v) {
                    WorkQueue &victim = queues[(self + v) % workers];
                    std::lock_guard<std::mutex> lock(victim.mu);
                    if (!victim.q.empty()) {
                        idx = victim.q.back();
                        victim.q.pop_back();
                        found = true;
                    }
                }
                if (!found)
                    return; // all queues drained; no new work appears
                runCell(cells_[idx], self);
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(workerBody, w);
        for (std::thread &t : pool)
            t.join();
    }

    // Replay captured output in submission order, then surface the
    // first failure. Replay happens even when a cell failed, so a
    // fatal cell's context is visible before the throw. Routing via
    // logToOut/logToErr keeps replay composable: a caller that is
    // itself running under a ScopedLogConfig captures the replayed
    // text instead of it hitting the real streams.
    for (CellState &cell : cells_) {
        if (!cell.out.empty())
            sim::logToOut(cell.out);
        if (!cell.err.empty())
            sim::logToErr(cell.err);
    }
    std::fflush(stdout);

    // Surface failures: identify the first failed cell by submission
    // index, log how many further failures are being suppressed, then
    // rethrow wrapped with the cell index so the caller can tell
    // *which* configuration blew up.
    std::exception_ptr first;
    std::size_t firstIdx = 0;
    std::size_t failed = 0;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        if (!cells_[i].error)
            continue;
        ++failed;
        if (!first) {
            first = cells_[i].error;
            firstIdx = i;
        }
    }
    cells_.clear();
    if (!first)
        return;
    if (failed > 1)
        sim::warnImpl("sweep: %zu cell(s) failed; reporting cell %zu "
                      "only, suppressing %zu more",
                      failed, firstIdx, failed - 1);
    try {
        std::rethrow_exception(first);
    } catch (const sim::FatalError &e) {
        throw sim::FatalError(sim::strPrintf(
            "sweep cell %zu: %s", firstIdx, e.what()));
    } catch (const std::exception &e) {
        throw std::runtime_error(sim::strPrintf(
            "sweep cell %zu: %s", firstIdx, e.what()));
    }
    // Non-std exceptions propagate unwrapped from the rethrow above.
}

bool
consumeFlag(int &argc, char **argv, const char *flag,
            std::string &value)
{
    const std::size_t n = std::strlen(flag);
    bool found = false;
    int keep = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], flag, n) == 0) {
            value = argv[i] + n; // last occurrence wins
            found = true;
        } else {
            argv[keep++] = argv[i];
        }
    }
    argc = keep;
    return found;
}

unsigned
parseJobsFlag(int &argc, char **argv, unsigned fallback)
{
    std::string value;
    if (!consumeFlag(argc, argv, "--jobs=", value))
        return fallback;
    char *end = nullptr;
    const unsigned long n = std::strtoul(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || n == 0 || n > 4096)
        K2_FATAL("--jobs expects an integer in [1, 4096], got '%s'",
                 value.c_str());
    return static_cast<unsigned>(n);
}

std::string
parseFaultsFlag(int &argc, char **argv)
{
    std::string spec;
    if (consumeFlag(argc, argv, "--faults=", spec) && spec.empty())
        K2_FATAL("--faults expects a fault spec, e.g. "
                 "--faults=mailbox.drop:p=1e-3");
    return spec;
}

std::uint64_t
parseUintFlag(int &argc, char **argv, const char *flag,
              std::uint64_t fallback, std::uint64_t lo,
              std::uint64_t hi)
{
    std::string value;
    if (!consumeFlag(argc, argv, flag, value))
        return fallback;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || n < lo || n > hi)
        K2_FATAL("%s expects an integer in [%llu, %llu], got '%s'",
                 flag, static_cast<unsigned long long>(lo),
                 static_cast<unsigned long long>(hi), value.c_str());
    return n;
}

double
parseFloatFlag(int &argc, char **argv, const char *flag,
               double fallback, double hi)
{
    std::string value;
    if (!consumeFlag(argc, argv, flag, value))
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || !(v > 0) || v > hi)
        K2_FATAL("%s expects a number in (0, %g], got '%s'", flag, hi,
                 value.c_str());
    return v;
}

std::string
parseStringFlag(int &argc, char **argv, const char *flag,
                const std::string &fallback)
{
    std::string value;
    if (!consumeFlag(argc, argv, flag, value))
        return fallback;
    if (value.empty())
        K2_FATAL("%s expects a non-empty value", flag);
    return value;
}

bool
parseDsmFlag(int &argc, char **argv, os::coherence::ProtocolKind &out)
{
    std::string value;
    if (!consumeFlag(argc, argv, "--dsm=", value))
        return false;
    // Char offset of the name inside the user's "--dsm=NAME" text,
    // carried into the parse error (the --faults= convention).
    out = os::coherence::parseProtocol(value,
                                       std::strlen("--dsm="));
    return true;
}

} // namespace wl
} // namespace k2
