#include "workloads/testbed.h"

#include "obs/metrics.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace wl {

namespace {

/** 64 MB ramdisk with 4 KB blocks. */
constexpr std::uint64_t kDiskBlocks = 16384;

} // namespace

void
Testbed::attachServices()
{
    disk_ = std::make_unique<svc::RamDisk>(svc::Ext2Fs::kBlockBytes,
                                           kDiskBlocks);
    fs_ = std::make_unique<svc::Ext2Fs>(*sys_, *disk_);
    dma_ = std::make_unique<svc::DmaDriver>(*sys_);
    udp_ = std::make_unique<svc::UdpStack>(*sys_);
    if (k2_ && k2_->recoveryArmed())
        dma_->enableRecovery();

    for (kern::Kernel *kern : sys_->kernels())
        dma_->attachKernel(*kern);
    if (k2_)
        k2_->irqRouter().manageLine(soc::kIrqDma);

    proc_ = &sys_->createProcess("testbed");

    // Format the filesystem from a boot thread.
    bool formatted = false;
    sys_->spawnNormal(*proc_, "mkfs",
                      [this, &formatted](kern::Thread &t)
                          -> sim::Task<void> {
                          const auto st = co_await fs_->mkfs(t);
                          K2_ASSERT(st == svc::FsStatus::Ok);
                          formatted = true;
                      });
    sys_->engine().run();
    K2_ASSERT(formatted);
}

Testbed
Testbed::makeK2(os::K2Config cfg)
{
    Testbed tb;
    auto k2sys = std::make_unique<os::K2System>(std::move(cfg));
    tb.k2_ = k2sys.get();
    tb.sys_ = std::move(k2sys);
    tb.attachServices();
    return tb;
}

Testbed
Testbed::makeLinux(baseline::LinuxConfig cfg)
{
    Testbed tb;
    tb.sys_ = std::make_unique<baseline::LinuxSystem>(std::move(cfg));
    tb.attachServices();
    return tb;
}

void
Testbed::snapState(snap::Io &io)
{
    io.check(k2_ ? 1 : 0, "Testbed::model");
    sys_->snapState(io);
    disk_->snapState(io);
    fs_->snapState(io);
    dma_->snapState(io);
    udp_->snapState(io);
    io.check(proc_->pid(), "Testbed::proc");
}

void
Testbed::registerMetrics(obs::MetricsRegistry &reg)
{
    sys_->registerMetrics(reg);
    dma_->registerMetrics(reg, "svc.dma");
    fs_->registerMetrics(reg, "svc.fs");
    udp_->registerMetrics(reg, "svc.net");
    reg.addCounter("svc.disk.reads", disk_->reads);
    reg.addCounter("svc.disk.writes", disk_->writes);
}

} // namespace wl
} // namespace k2
