#include "workloads/warm.h"

#include <cstring>

#include "sim/log.h"

namespace k2 {
namespace wl {

const char *
sweepModeName(SweepMode mode)
{
    return mode == SweepMode::Warm ? "warm" : "cold";
}

SweepMode
parseSweepFlag(int &argc, char **argv, SweepMode fallback)
{
    for (int i = 1; i < argc; ++i) {
        static constexpr const char kFlag[] = "--sweep=";
        if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) != 0)
            continue;
        const char *value = argv[i] + sizeof(kFlag) - 1;
        SweepMode mode;
        if (std::strcmp(value, "cold") == 0)
            mode = SweepMode::Cold;
        else if (std::strcmp(value, "warm") == 0)
            mode = SweepMode::Warm;
        else
            K2_FATAL("--sweep expects 'cold' or 'warm', got '%s'",
                     value);
        for (int j = i; j + 1 < argc; ++j)
            argv[j] = argv[j + 1];
        --argc;
        return mode;
    }
    return fallback;
}

Testbed &
warmK2(SweepMode mode, const std::string &key,
       const std::function<os::K2Config()> &cfg)
{
    return warmFixture<Testbed>(mode, key, [&cfg] {
        return std::make_unique<Testbed>(
            cfg ? Testbed::makeK2(cfg()) : Testbed::makeK2());
    });
}

Testbed &
warmLinux(SweepMode mode, const std::string &key,
          const std::function<baseline::LinuxConfig()> &cfg)
{
    return warmFixture<Testbed>(mode, key, [&cfg] {
        return std::make_unique<Testbed>(
            cfg ? Testbed::makeLinux(cfg()) : Testbed::makeLinux());
    });
}

} // namespace wl
} // namespace k2
