#include "workloads/warm.h"

#include "sim/log.h"
#include "workloads/sweep.h"

namespace k2 {
namespace wl {

const char *
sweepModeName(SweepMode mode)
{
    return mode == SweepMode::Warm ? "warm" : "cold";
}

SweepMode
parseSweepFlag(int &argc, char **argv, SweepMode fallback)
{
    std::string value;
    if (!consumeFlag(argc, argv, "--sweep=", value))
        return fallback;
    if (value == "cold")
        return SweepMode::Cold;
    if (value == "warm")
        return SweepMode::Warm;
    K2_FATAL("--sweep expects 'cold' or 'warm', got '%s'",
             value.c_str());
}

Testbed &
warmK2(SweepMode mode, const std::string &key,
       const std::function<os::K2Config()> &cfg)
{
    return warmFixture<Testbed>(mode, key, [&cfg] {
        return std::make_unique<Testbed>(
            cfg ? Testbed::makeK2(cfg()) : Testbed::makeK2());
    });
}

Testbed &
warmLinux(SweepMode mode, const std::string &key,
          const std::function<baseline::LinuxConfig()> &cfg)
{
    return warmFixture<Testbed>(mode, key, [&cfg] {
        return std::make_unique<Testbed>(
            cfg ? Testbed::makeLinux(cfg()) : Testbed::makeLinux());
    });
}

} // namespace wl
} // namespace k2
