/**
 * @file
 * The light-task episode harness implementing the paper's energy
 * methodology (§9.2): "in each run of a benchmark, cores are woken up,
 * execute the workloads as fast as possible, and then stay idle until
 * becoming inactive" -- so each run's energy includes the wakeup, the
 * execution, and the full idle tail until power gating. Energy
 * efficiency is reported in MB per joule.
 */

#ifndef K2_WORKLOADS_EPISODE_H
#define K2_WORKLOADS_EPISODE_H

#include <functional>
#include <string>

#include "sim/task.h"
#include "os/system.h"

namespace k2 {
namespace wl {

/** A workload body: runs in a thread, returns bytes of useful work. */
using Workload = std::function<sim::Task<std::uint64_t>(kern::Thread &)>;

/** Outcome of one benchmark episode. */
struct EpisodeResult
{
    double energyUj = 0;          //!< Total across all rails.
    sim::Duration runTime = 0;    //!< Workload start to completion.
    sim::Duration episodeTime = 0; //!< Including the idle tail.
    std::uint64_t bytes = 0;      //!< Useful bytes processed.

    /** Energy efficiency in MB per joule (the paper's Fig. 6 metric). */
    double
    mbPerJoule() const
    {
        if (energyUj <= 0)
            return 0;
        return (static_cast<double>(bytes) / 1e6) / (energyUj / 1e6);
    }

    /** Throughput while running, in MB/s. */
    double
    mbPerSec() const
    {
        const double s = sim::toSec(runTime);
        return s > 0 ? static_cast<double>(bytes) / 1e6 / s : 0;
    }
};

/**
 * Run one light-task episode on @p sys.
 *
 * Quiesces the system (drains the engine so every core reaches the
 * inactive state), snapshots the energy meter, runs @p workload as a
 * NightWatch thread (a plain thread on the baseline), and keeps
 * simulating until the system quiesces again -- charging the idle tail
 * to the episode, exactly as the paper's rail measurements do.
 */
EpisodeResult runEpisode(os::SystemImage &sys, kern::Process &proc,
                         const std::string &name, Workload workload);

/** As runEpisode, but runs the workload as a Normal thread. */
EpisodeResult runEpisodeNormal(os::SystemImage &sys, kern::Process &proc,
                               const std::string &name, Workload workload);

/**
 * Run @p warmups discarded episodes, then one measured episode.
 *
 * Warming matters under K2: the *first* touch of a shadowed service's
 * state from the weak domain pulls the pages over through DSM mailbox
 * requests, which wake the strong domain. In steady state the pages
 * stay weak-owned, which is what the paper's repeated-run measurements
 * observe.
 */
EpisodeResult runEpisodeWarm(os::SystemImage &sys, kern::Process &proc,
                             const std::string &name, Workload workload,
                             int warmups = 1);

} // namespace wl
} // namespace k2

#endif // K2_WORKLOADS_EPISODE_H
