/**
 * @file
 * Boot-once sweep mode: warm-fixture pool over snap::Snapshot.
 *
 * Sweep binaries spend most of their wall-clock booting identical
 * systems: every cell builds a Testbed (two kernel boots, DSM region
 * setup, mkfs on a 64 MB ramdisk) only to run a millisecond-scale
 * episode on it. warmFixture() removes that cost: the first cell per
 * (configuration key, host thread) builds the fixture, quiesces it,
 * and captures a snap::Snapshot; every later cell with the same key
 * rewinds the pooled instance to that image instead of rebooting.
 *
 * Correctness invariant: a restored fixture is byte-identical to a
 * freshly booted one (the snapshot layer rewrites *all* semantic
 * state -- clock, RNG streams, allocator free lists, tracer cursors,
 * service state, disk blocks), so per-cell artifacts are unchanged
 * between `--sweep=warm` and `--sweep=cold` at any `--jobs=N`.
 * tests/snap_test.cpp and scripts/check.sh enforce this.
 *
 * The pool is thread_local: SweepRunner worker threads never share a
 * fixture, cells on one thread run serially, and masters are destroyed
 * at thread exit.
 */

#ifndef K2_WORKLOADS_WARM_H
#define K2_WORKLOADS_WARM_H

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "snap/snapshot.h"
#include "workloads/testbed.h"

namespace k2 {
namespace wl {

/** How a sweep binary provisions per-cell fixtures. */
enum class SweepMode
{
    Cold, //!< Boot a fresh fixture for every cell (legacy behaviour).
    Warm, //!< Boot once per (key, thread), fork from a snapshot after.
};

/** Human-readable mode name for banners. */
const char *sweepModeName(SweepMode mode);

/**
 * Parse and strip a leading `--sweep=cold|warm` flag from argv.
 *
 * @param fallback Returned when the flag is absent. Sweep binaries
 *        default to Warm; pass Cold for tools where reproducing the
 *        historical boot-per-cell timing matters.
 */
SweepMode parseSweepFlag(int &argc, char **argv,
                         SweepMode fallback = SweepMode::Warm);

/**
 * Provision a fixture for one sweep cell.
 *
 * @tparam T Fixture type exposing `sim::Engine &engine()` and
 *         `void snapState(snap::Io &)` -- e.g. wl::Testbed.
 * @param mode Warm forks from the pooled snapshot; Cold rebuilds.
 * @param key Configuration identity: cells whose @p make produces an
 *        identical fixture must agree on the key, cells with different
 *        configurations must not collide.
 * @param make Factory for a cold fixture. Called on the first warm use
 *        of @p key per thread, and on every cold call.
 * @return A quiesced fixture in the post-boot state. Valid until the
 *         next warmFixture() call with the same key on this thread.
 */
template <typename T>
T &
warmFixture(SweepMode mode, const std::string &key,
            const std::function<std::unique_ptr<T>()> &make)
{
    struct Entry
    {
        std::unique_ptr<T> master;
        snap::Snapshot image;
    };
    thread_local std::map<std::string, Entry> pool;

    Entry &e = pool[key];
    if (mode == SweepMode::Cold) {
        // Rebuild from scratch; reusing the slot just bounds the pool.
        // The image is dropped too: a cold master is dirty after its
        // cell runs, so it must never seed a later warm fork.
        e.image = snap::Snapshot();
        e.master = make();
        e.master->engine().run();
        return *e.master;
    }
    if (e.image.empty()) {
        e.master = make();
        e.master->engine().run(); // Quiesce before capture.
        e.image = snap::Snapshot::of(*e.master);
    } else {
        e.image.restore(*e.master);
    }
    return *e.master;
}

/**
 * Pool a K2 testbed under @p key. Cells whose @p cfg produces a
 * different configuration must use a different key. A null @p cfg
 * means the default K2Config.
 */
Testbed &warmK2(SweepMode mode, const std::string &key,
                const std::function<os::K2Config()> &cfg = {});

/** Pool a baseline-Linux testbed under @p key. */
Testbed &warmLinux(SweepMode mode, const std::string &key,
                   const std::function<baseline::LinuxConfig()> &cfg = {});

} // namespace wl
} // namespace k2

#endif // K2_WORKLOADS_WARM_H
