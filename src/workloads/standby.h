/**
 * @file
 * Device standby-time estimation (§9.2: "we estimate that K2 will
 * extend the reported device standby time by 59%, from 5.9 days to
 * 9.4 days", based on the background email-sync usage of Xu et al.
 * [41]).
 *
 * Model: during standby the battery drains at a base sleep power plus
 * the average power of periodic background syncs:
 *
 *   days = capacity / (P_sleep + P_sync)
 *
 * Working back from the paper's own numbers: going from 5.9 to 9.4
 * days on one battery requires the average drain to fall from ~46.5 mW
 * to ~29.2 mW, i.e. the OS-execution share of sync activity must be
 * ~17-20 mW of the Linux total. We therefore fix the Linux sync share
 * (syncShareOfDrain, default 43%) and the baseline 5.9 days, derive
 * P_sleep and the Linux sync power from them, and scale the K2 sync
 * power by the *measured* per-episode energy ratio of the two systems.
 */

#ifndef K2_WORKLOADS_STANDBY_H
#define K2_WORKLOADS_STANDBY_H

namespace k2 {
namespace wl {

struct StandbyModel
{
    /** Battery capacity in joules (1650 mAh * 3.7 V, a Galaxy S2). */
    double capacityJ = 1650e-3 * 3.7 * 3600;
    /** Baseline standby from [41]. */
    double baselineDays = 5.9;
    /**
     * Fraction of the baseline drain due to background-sync OS
     * execution (fit so the paper's 8x energy gain yields its
     * reported +59%).
     */
    double syncShareOfDrain = 0.43;

    /** Average total drain at the baseline, in mW. */
    double baselineDrainMw() const;

    /** Device sleep power excluding sync activity, in mW. */
    double sleepMw() const;

    /** Linux's average sync power, in mW. */
    double linuxSyncMw() const;

    /**
     * Standby in days when sync episodes cost @p episode_ratio of the
     * Linux episodes' energy (measured: E_k2 / E_linux).
     */
    double standbyDays(double episode_ratio) const;
};

} // namespace wl
} // namespace k2

#endif // K2_WORKLOADS_STANDBY_H
