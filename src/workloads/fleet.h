/**
 * @file
 * Fleet-scale device population simulation with streaming percentile
 * aggregation (ROADMAP item 1, DESIGN.md §11).
 *
 * A fleet run simulates a *population* of K2 devices over a time
 * window, driven by the ephemeral background traffic that dominates
 * smart-device activity: sensor batches (DMA), push/heartbeat bursts
 * (UDP), and periodic cloud sync (ext2 + UDP). It is a two-level
 * model:
 *
 *  1. Grounding: each sweep cell forks a warm testbed
 *     (wl::warmFixture) and *measures* the episode kinds on the full
 *     K2 simulation at two payload sizes each, yielding a per-kind
 *     linear energy/latency model (Calibration). The snapshot layer's
 *     warm==cold guarantee makes these measurements byte-identical in
 *     either sweep mode.
 *
 *  2. Population synthesis: devices are drawn from a seeded
 *     generator -- per-device parameter jitter over app mix, arrival
 *     rates, payload scale, and battery class, around a named
 *     TrafficMix. Each device's episode timeline over the window is
 *     synthesised from its own id-derived RNG stream (independent of
 *     how devices are sharded into cells) and priced through the
 *     measured calibration; every episode's energy and latency
 *     stream into QuantileSketches.
 *
 * Aggregation is memory-bounded and order-independent: cells
 * accumulate into per-lane FleetStats partials (SweepRunner's
 * streaming-reducer mode), which fold with QuantileSketch::merge --
 * exactly associative and commutative -- so the fleet report is
 * byte-identical at any --jobs=N and between --sweep=warm|cold.
 */

#ifndef K2_WORKLOADS_FLEET_H
#define K2_WORKLOADS_FLEET_H

#include <array>
#include <cstdint>
#include <string>

#include "sim/sketch.h"
#include "sim/stats.h"
#include "workloads/warm.h"

namespace k2 {
namespace wl {

/** The background episode kinds of the fleet traffic model. */
enum class FleetKind : std::uint8_t
{
    Sensor = 0, //!< Sensor batch drained over DMA.
    Push,       //!< Push notification / heartbeat burst over UDP.
    Sync,       //!< Periodic cloud sync persisted through ext2.
};
constexpr std::size_t kFleetKinds = 3;
const char *fleetKindName(FleetKind kind);

/**
 * A named traffic mix: fleet-wide base arrival rates and payload
 * ranges per episode kind. Individual devices jitter around these.
 */
struct TrafficMix
{
    const char *name;
    const char *summary;
    double perHour[kFleetKinds];      //!< Mean episodes per hour.
    std::uint64_t minBytes[kFleetKinds];
    std::uint64_t maxBytes[kFleetKinds];
};

/** The mix registry. @{ */
const TrafficMix *findMix(const std::string &name); //!< Null if unknown.
std::string mixNames(); //!< Comma-separated, for usage text.
/** @} */

/**
 * One device's sampled parameters: per-kind arrival-rate and payload
 * jitter around the mix, plus a battery class scaling energy cost
 * (smaller devices pay proportionally more per byte moved).
 */
struct DeviceModel
{
    std::uint64_t id = 0;
    std::uint8_t batteryClass = 0;       //!< 0 small, 1 medium, 2 large.
    double energyScale = 1.0;            //!< Battery-class cost factor.
    double rateScale[kFleetKinds] = {};  //!< Arrival-rate jitter.
    double sizeScale[kFleetKinds] = {};  //!< Payload jitter.
};

/** Deterministically derive device @p id's model from the fleet seed;
 *  independent of how devices are sharded into cells. */
DeviceModel makeDevice(std::uint64_t seed, std::uint64_t id,
                       const TrafficMix &mix);

/**
 * Per-kind measured episode cost: linear in payload bytes, fitted
 * from two full-simulation measurements on a (warm-forked) testbed.
 */
struct EpisodeModel
{
    double energyBaseUj = 0;    //!< Wakeup + idle-tail energy.
    double energyPerByteUj = 0;
    double latencyBaseUs = 0;
    double latencyPerByteUs = 0;
};

struct Calibration
{
    std::array<EpisodeModel, kFleetKinds> kinds{};
};

/** Measure the episode kinds on @p tb (quiesced, post-boot). */
Calibration calibrate(Testbed &tb);

/**
 * Streaming aggregate over any shard of the fleet. All fields merge
 * exactly (associative + commutative), so shard partials fold into
 * the fleet total in any order with byte-identical results.
 */
struct FleetStats
{
    sim::QuantileSketch episodeEnergyUj; //!< Per-episode energy.
    sim::QuantileSketch episodeLatencyUs;
    sim::QuantileSketch deviceEnergyUj;  //!< Per-device window total.
    std::array<sim::QuantileSketch, kFleetKinds> kindEnergyUj;
    std::uint64_t episodes[kFleetKinds] = {};
    std::uint64_t bytes = 0;             //!< Useful payload bytes.
    std::uint64_t devices = 0;

    void merge(const FleetStats &other);
};

/**
 * Synthesise device @p id's episode timeline over @p hours and
 * stream it into @p into. Pure host computation (the simulation cost
 * was paid once, in @p cal); this is the fleet hot path.
 */
void synthesizeDevice(const TrafficMix &mix, const Calibration &cal,
                      std::uint64_t seed, std::uint64_t id,
                      double hours, FleetStats &into);

struct FleetConfig
{
    std::uint64_t devices = 1000;
    double hours = 24.0;
    std::string mix = "default";
    std::uint64_t seed = 42;
    std::string faults;           //!< FaultPlan spec; empty = none.
    SweepMode sweep = SweepMode::Warm;
    unsigned jobs = 0;            //!< 0 = hardware concurrency.
};

struct FleetResult
{
    FleetStats stats;
    Calibration calibration;
    std::uint64_t cells = 0;
    std::string text; //!< Rendered report (deterministic).
    std::string json; //!< Sketch JSON artifact (deterministic).
};

/**
 * Run the whole fleet: shard devices into cells, calibrate +
 * synthesise each cell on the sweep runner's reduction lanes, fold
 * the lane partials, and render the report. Deterministic for a
 * given config: byte-identical text/json at any jobs count and in
 * both sweep modes.
 */
FleetResult runFleet(const FleetConfig &cfg);

} // namespace wl
} // namespace k2

#endif // K2_WORKLOADS_FLEET_H
