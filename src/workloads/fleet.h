/**
 * @file
 * Fleet-scale device population simulation with streaming percentile
 * aggregation (ROADMAP item 1, DESIGN.md §11).
 *
 * A fleet run simulates a *population* of K2 devices over a time
 * window, driven by the ephemeral background traffic that dominates
 * smart-device activity: sensor batches (DMA), push/heartbeat bursts
 * (UDP), and periodic cloud sync (ext2 + UDP). It is a two-level
 * model:
 *
 *  1. Grounding: episode kinds are *measured* on a warm-forked K2
 *     testbed (wl::warmFixture) at two payload sizes each, yielding a
 *     per-kind linear energy/latency model (Calibration). The
 *     snapshot layer's warm==cold guarantee makes these measurements
 *     byte-identical in either sweep mode, which is what lets
 *     calibrationFor() memoize them: one calibration per unique
 *     (sweep mode, config key) per host thread, bit-identical to
 *     recalibrating every cell.
 *
 *  2. Population synthesis: devices are drawn from a seeded
 *     generator -- per-device parameter jitter over app mix, arrival
 *     rates, payload scale, and battery class, around a named
 *     TrafficMix. Each device owns a family of counter-based RNG
 *     streams keyed (seed, id, stream) -- sim::CounterRng, so no
 *     draw depends on how devices are sharded into cells -- from
 *     which its episode count per kind is drawn as a Poisson count
 *     and its per-episode payloads and noise are filled into flat
 *     scratch arrays, priced through the measured calibration in a
 *     branch-lean batched loop, and streamed into QuantileSketches
 *     (DESIGN.md §12).
 *
 * Aggregation is memory-bounded and order-independent: cells
 * accumulate into per-lane FleetStats partials (SweepRunner's
 * streaming-reducer mode), which fold with QuantileSketch::merge --
 * exactly associative and commutative -- so the fleet report is
 * byte-identical at any --jobs=N and between --sweep=warm|cold.
 */

#ifndef K2_WORKLOADS_FLEET_H
#define K2_WORKLOADS_FLEET_H

#include <array>
#include <cstdint>
#include <string>

#include "sim/sketch.h"
#include "sim/stats.h"
#include "workloads/warm.h"

namespace k2 {
namespace wl {

/** The background episode kinds of the fleet traffic model. */
enum class FleetKind : std::uint8_t
{
    Sensor = 0, //!< Sensor batch drained over DMA.
    Push,       //!< Push notification / heartbeat burst over UDP.
    Sync,       //!< Periodic cloud sync persisted through ext2.
};
constexpr std::size_t kFleetKinds = 3;
const char *fleetKindName(FleetKind kind);

/**
 * A named traffic mix: fleet-wide base arrival rates and payload
 * ranges per episode kind. Individual devices jitter around these.
 */
struct TrafficMix
{
    const char *name;
    const char *summary;
    double perHour[kFleetKinds];      //!< Mean episodes per hour.
    std::uint64_t minBytes[kFleetKinds];
    std::uint64_t maxBytes[kFleetKinds];
};

/** The mix registry. @{ */
const TrafficMix *findMix(const std::string &name); //!< Null if unknown.
std::string mixNames(); //!< Comma-separated, for usage text.
/** @} */

/**
 * One device's sampled parameters: per-kind arrival-rate and payload
 * jitter around the mix, plus a battery class scaling energy cost
 * (smaller devices pay proportionally more per byte moved).
 */
struct DeviceModel
{
    std::uint64_t id = 0;
    std::uint8_t batteryClass = 0;       //!< 0 small, 1 medium, 2 large.
    double energyScale = 1.0;            //!< Battery-class cost factor.
    double rateScale[kFleetKinds] = {};  //!< Arrival-rate jitter.
    double sizeScale[kFleetKinds] = {};  //!< Payload jitter.
};

/** Deterministically derive device @p id's model from the fleet seed;
 *  independent of how devices are sharded into cells. */
DeviceModel makeDevice(std::uint64_t seed, std::uint64_t id,
                       const TrafficMix &mix);

/**
 * Per-kind measured episode cost: linear in payload bytes, fitted
 * from two full-simulation measurements on a (warm-forked) testbed.
 */
struct EpisodeModel
{
    double energyBaseUj = 0;    //!< Wakeup + idle-tail energy.
    double energyPerByteUj = 0;
    double latencyBaseUs = 0;
    double latencyPerByteUs = 0;

    bool operator==(const EpisodeModel &) const = default;
};

struct Calibration
{
    std::array<EpisodeModel, kFleetKinds> kinds{};

    bool operator==(const Calibration &) const = default;
};

/** Measure the episode kinds on @p tb (quiesced, post-boot). */
Calibration calibrate(Testbed &tb);

/**
 * Memoized calibration for one canonical configuration.
 *
 * @p key is the configuration identity (same contract as
 * warmFixture's key: configs that provision identical testbeds must
 * agree, different configs must not collide). The first call per
 * (sweep mode, key) on a host thread provisions a testbed through
 * warmK2() and measures it with calibrate(); later calls return the
 * cached model without touching the simulation. Because a warm fork
 * restores the exact post-boot state, the cached result is
 * bit-identical to recalibrating (a test asserts this), so sweep
 * artifacts are unchanged -- only the per-cell simulation cost is
 * gone. The cache is thread_local, mirroring the warm-fixture pool:
 * no locks, and SweepRunner lanes never share an entry.
 */
const Calibration &
calibrationFor(SweepMode mode, const std::string &key,
               const std::function<os::K2Config()> &makeConfig = {});

/**
 * Streaming aggregate over any shard of the fleet. All fields merge
 * exactly (associative + commutative), so shard partials fold into
 * the fleet total in any order with byte-identical results.
 */
struct FleetStats
{
    sim::QuantileSketch episodeLatencyUs;
    sim::QuantileSketch deviceEnergyUj;  //!< Per-device window total.
    std::array<sim::QuantileSketch, kFleetKinds> kindEnergyUj;
    std::uint64_t episodes[kFleetKinds] = {};
    std::uint64_t bytes = 0;             //!< Useful payload bytes.
    std::uint64_t devices = 0;

    void merge(const FleetStats &other);

    /**
     * The all-kinds per-episode energy sketch, derived by merging the
     * per-kind sketches. Every episode's energy is sampled into
     * exactly one kind sketch and merge is exactly associative and
     * commutative, so this equals having sampled each episode into a
     * dedicated sketch as well -- without the third sample() on the
     * synthesis hot path.
     */
    sim::QuantileSketch episodeEnergy() const;
};

/**
 * Synthesise device @p id's episode timeline over @p hours and
 * stream it into @p into. Pure host computation (the simulation cost
 * was paid once, in @p cal); this is the fleet hot path: episode
 * counts are Poisson draws, payload/noise come from batched
 * counter-RNG fills over flat scratch arrays, and samples enter the
 * sketches through sampleBatch (DESIGN.md §12).
 *
 * @p diurnal > 0 modulates arrival rates sinusoidally over the day,
 * amplitude in [0, 1] (see FleetConfig::diurnal); 0 is the exact
 * unmodulated path.
 */
void synthesizeDevice(const TrafficMix &mix, const Calibration &cal,
                      std::uint64_t seed, std::uint64_t id,
                      double hours, FleetStats &into,
                      double diurnal = 0.0);

struct FleetConfig
{
    std::uint64_t devices = 1000;
    double hours = 24.0;
    std::string mix = "default";
    std::uint64_t seed = 42;
    std::string faults;           //!< FaultPlan spec; empty = none.
    std::size_t replicas = 1;     //!< Shadow replication degree.
    SweepMode sweep = SweepMode::Warm;
    unsigned jobs = 0;            //!< 0 = hardware concurrency.

    /**
     * Diurnal arrival-rate modulation amplitude A in [0, 1]:
     * lambda(t) = lambda0 * (1 + A * sin(2*pi * t / 24h)). 0 (the
     * default) takes the exact unmodulated code path, so unset runs
     * are byte-identical to a build without the feature; when set,
     * episode counts are drawn by Poisson thinning at the peak rate,
     * deterministic and jobs-invariant like everything else.
     */
    double diurnal = 0.0;
};

struct FleetResult
{
    FleetStats stats;
    Calibration calibration;
    std::uint64_t cells = 0;
    std::string text; //!< Rendered report (deterministic).
    std::string json; //!< Sketch JSON artifact (deterministic).
};

/**
 * Run the whole fleet: shard devices into cells, calibrate +
 * synthesise each cell on the sweep runner's reduction lanes, fold
 * the lane partials, and render the report. Deterministic for a
 * given config: byte-identical text/json at any jobs count and in
 * both sweep modes.
 */
FleetResult runFleet(const FleetConfig &cfg);

} // namespace wl
} // namespace k2

#endif // K2_WORKLOADS_FLEET_H
