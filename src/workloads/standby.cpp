#include "workloads/standby.h"

#include "sim/log.h"

namespace k2 {
namespace wl {

double
StandbyModel::baselineDrainMw() const
{
    const double seconds = baselineDays * 86400.0;
    return capacityJ / seconds * 1000.0;
}

double
StandbyModel::sleepMw() const
{
    return baselineDrainMw() * (1.0 - syncShareOfDrain);
}

double
StandbyModel::linuxSyncMw() const
{
    return baselineDrainMw() * syncShareOfDrain;
}

double
StandbyModel::standbyDays(double episode_ratio) const
{
    if (episode_ratio <= 0)
        K2_FATAL("episode energy ratio must be positive (got %f)",
                 episode_ratio);
    const double total_mw = sleepMw() + linuxSyncMw() * episode_ratio;
    const double seconds = capacityJ / (total_mw / 1000.0);
    return seconds / 86400.0;
}

} // namespace wl
} // namespace k2
