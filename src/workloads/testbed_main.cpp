/**
 * @file
 * The `testbed` binary: run a mixed episode scenario on the K2 or
 * baseline system and export observability artifacts.
 *
 *   testbed [--system=k2|linux] [--episodes=N] [--runs=N] [--seed=N]
 *           [--jobs=N] [--sweep=warm|cold] [--faults=SPEC]
 *           [--dsm=PROTO] [--replicas=N] [--metrics=FILE]
 *           [--trace=FILE]
 *
 * --faults arms the K2 fault-injection plane with a declarative
 * schedule (e.g. --faults="mailbox.drop:p=1e-3,dma.err:at=2s"); the
 * recovery protocols and their os.recovery.* metrics come with it.
 *
 * --dsm selects the DSM coherence protocol (2state, 3state, mesi,
 * moesi, rac; see DESIGN.md §14). The default 2state is byte-identical
 * to builds before the protocol zoo.
 *
 * --replicas=N (default 1) runs each shadowed service on N weak
 * domains with majority voting and leader election (os.replica.*
 * metrics). N=1 is byte-identical to builds before the replica layer.
 *
 * --metrics writes the final registry snapshot as JSON; --trace writes
 * a Chrome trace_event (catapult) file loadable in chrome://tracing or
 * Perfetto. Both are byte-deterministic for a given flag set. The
 * per-episode report (DSM fault breakdown, per-rail energy split,
 * service activity) prints to stdout either way.
 *
 * --runs=N repeats the whole episode chain N times, run r seeded with
 * seed+r; the runs are independent sweep cells and execute in parallel
 * under --jobs (metrics/trace artifacts always come from run 0, so
 * they stay byte-identical to a single run). By default each worker
 * boots one testbed and forks the remaining runs from a warm snapshot;
 * --sweep=cold boots per run instead. Both modes produce identical
 * bytes.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "obs/metrics.h"
#include "os/coherence/protocol.h"
#include "obs/trace_export.h"
#include "sim/random.h"
#include "workloads/benchmarks.h"
#include "workloads/report.h"
#include "workloads/sweep.h"
#include "workloads/testbed.h"
#include "workloads/warm.h"

namespace {

struct Options
{
    bool k2 = true;
    int episodes = 6;
    int runs = 1;
    int replicas = 1;
    std::uint64_t seed = 42;
    k2::os::coherence::ProtocolKind dsm =
        k2::os::coherence::ProtocolKind::TwoState;
    std::string faults;
    std::string metricsFile;
    std::string traceFile;
};

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            const std::size_t n = std::strlen(flag);
            if (arg.compare(0, n, flag) == 0)
                return arg.c_str() + n;
            return nullptr;
        };
        if (const char *v = value("--system=")) {
            if (std::strcmp(v, "k2") == 0) {
                opt.k2 = true;
            } else if (std::strcmp(v, "linux") == 0) {
                opt.k2 = false;
            } else {
                std::fprintf(stderr, "unknown system '%s'\n", v);
                return false;
            }
        } else if (const char *v = value("--episodes=")) {
            opt.episodes = std::atoi(v);
            if (opt.episodes <= 0) {
                std::fprintf(stderr, "bad episode count '%s'\n", v);
                return false;
            }
        } else if (const char *v = value("--runs=")) {
            opt.runs = std::atoi(v);
            if (opt.runs <= 0) {
                std::fprintf(stderr, "bad run count '%s'\n", v);
                return false;
            }
        } else if (const char *v = value("--seed=")) {
            opt.seed = std::strtoull(v, nullptr, 10);
        } else if (const char *v = value("--faults=")) {
            opt.faults = v;
        } else if (const char *v = value("--replicas=")) {
            opt.replicas = std::atoi(v);
            if (opt.replicas < 1 || opt.replicas > 15) {
                std::fprintf(stderr, "bad replica count '%s' (1..15)\n",
                             v);
                return false;
            }
        } else if (const char *v = value("--metrics=")) {
            opt.metricsFile = v;
        } else if (const char *v = value("--trace=")) {
            opt.traceFile = v;
        } else {
            std::fprintf(
                stderr,
                "usage: testbed [--system=k2|linux] [--episodes=N] "
                "[--runs=N] [--seed=N] [--jobs=N] [--sweep=warm|cold] "
                "[--faults=SPEC] [--dsm=PROTO] [--replicas=N] "
                "[--metrics=FILE] [--trace=FILE]\n");
            return false;
        }
    }
    if (!opt.faults.empty() && !opt.k2) {
        std::fprintf(stderr,
                     "--faults requires --system=k2 (the baseline has "
                     "no fault plane)\n");
        return false;
    }
    if (opt.replicas > 1 && !opt.k2) {
        std::fprintf(stderr,
                     "--replicas requires --system=k2 (the baseline "
                     "has no shadow services)\n");
        return false;
    }
    return true;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        std::fprintf(stderr, "cannot open '%s' for writing\n",
                     path.c_str());
        return false;
    }
    os << content;
    return os.good();
}

/** Everything one run (a whole episode chain) produces. */
struct RunOutput
{
    std::string text;        //!< Episode table + per-episode report.
    std::string metricsJson; //!< Run 0 only, when --metrics is set.
    std::string traceJson;   //!< Run 0 only, when --trace is set.
    std::size_t metricsCount = 0;
    std::size_t traceEvents = 0;
    std::uint64_t traceDropped = 0;
};

/**
 * Run the episode chain on a fresh testbed seeded with seed+run.
 * Only run 0 exports metrics/trace, so those artifacts are
 * byte-identical to a single-run invocation regardless of --runs or
 * --jobs.
 */
void
runChain(const Options &opt, k2::wl::SweepMode sweep, int run,
         RunOutput &out)
{
    using namespace k2;

    // All runs share one configuration, so under --sweep=warm each
    // worker boots a single testbed and forks every run from its
    // snapshot. The tracer enable flags below are snapshotted state,
    // so run 0's span recording does not leak into sibling runs.
    // The warm-fixture key embeds the replica degree only when it
    // differs from the default, so replicas=1 invocations keep the
    // exact pre-replication key (and hence fixture reuse behaviour).
    // Likewise the DSM protocol: the key gains a suffix only when it
    // deviates from the default, keeping pre-zoo keys (and fixture
    // reuse) for plain invocations.
    std::string key = "k2:" + opt.faults;
    if (opt.replicas > 1)
        key += ":r" + std::to_string(opt.replicas);
    if (opt.dsm != os::coherence::ProtocolKind::TwoState)
        key += ":" + std::string(os::coherence::protocolName(opt.dsm));
    wl::Testbed &tb = opt.k2
        ? wl::warmK2(sweep, key, [&opt] {
              os::K2Config cfg;
              if (!opt.faults.empty())
                  cfg.faults = fault::FaultPlan::parse(opt.faults);
              cfg.replicas = static_cast<std::size_t>(opt.replicas);
              cfg.dsmProtocol = opt.dsm;
              return cfg;
          })
        : wl::warmLinux(sweep, "linux");

    const bool exportArtifacts = run == 0;
    if (exportArtifacts && !opt.traceFile.empty()) {
        // Structured spans plus the text records mirrored onto
        // per-category tracks.
        tb.engine().tracer().enableSpans();
        tb.engine().tracer().enable(sim::kTraceAll);
    }

    obs::MetricsRegistry reg;
    tb.registerMetrics(reg);
    const obs::MetricsSnapshot before = reg.snapshot();

    sim::Rng rng(opt.seed + static_cast<std::uint64_t>(run));
    wl::Table episodes(
        {"episode", "workload", "run ms", "energy uJ", "MB/J"});
    for (int i = 0; i < opt.episodes; ++i) {
        const std::uint64_t bytes = 1024 + rng.below(65536);
        const char *kind = (i % 3 == 0)   ? "dma"
                           : (i % 3 == 1) ? "ext2"
                                          : "udp";
        const wl::EpisodeResult res = wl::runEpisode(
            tb.sys(), tb.proc(), kind,
            (i % 3 == 0)
                ? wl::dmaCopy(tb.dma(), 4096, bytes)
                : (i % 3 == 1)
                    ? wl::ext2Sync(tb.fs(), bytes, 2)
                    : wl::udpLoopback(tb.udp(), 8192, bytes));
        episodes.addRow({std::to_string(i), kind,
                         wl::fmt(sim::toSec(res.runTime) * 1e3, 3),
                         wl::fmt(res.energyUj),
                         wl::fmt(res.mbPerJoule(), 2)});
    }
    out.text = episodes.render();

    const obs::MetricsSnapshot after = reg.snapshot();
    const obs::MetricsSnapshot delta =
        obs::MetricsRegistry::diff(before, after);

    const std::string report = wl::episodeReport(delta);
    if (!report.empty()) {
        out.text += "\n";
        out.text += report;
    }

    if (exportArtifacts && !opt.metricsFile.empty()) {
        out.metricsJson = after.toJson();
        out.metricsCount = after.size();
    }
    if (exportArtifacts && !opt.traceFile.empty()) {
        out.traceJson = obs::chromeTraceJson(tb.engine().tracer());
        out.traceEvents = tb.engine().tracer().spanEvents().size();
        out.traceDropped = tb.engine().tracer().spansDropped();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace k2;

    const unsigned jobs = wl::parseJobsFlag(argc, argv);
    const wl::SweepMode sweep = wl::parseSweepFlag(argc, argv);

    Options opt;
    bool dsmSet = false;
    try {
        dsmSet = wl::parseDsmFlag(argc, argv, opt.dsm);
    } catch (const sim::FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
    if (!parseArgs(argc, argv, opt))
        return 2;
    if (dsmSet && !opt.k2) {
        std::fprintf(stderr,
                     "--dsm requires --system=k2 (the baseline has no "
                     "DSM)\n");
        return 2;
    }

    // Validate the fault spec up front so a typo fails fast instead of
    // surfacing from inside a sweep cell.
    if (!opt.faults.empty()) {
        try {
            (void)fault::FaultPlan::parse(opt.faults);
        } catch (const sim::FatalError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }

    // Each run is an independent sweep cell on its own testbed.
    wl::SweepRunner runner(jobs);
    std::vector<RunOutput> outputs(
        static_cast<std::size_t>(opt.runs));
    for (int r = 0; r < opt.runs; ++r) {
        runner.submit([&opt, &outputs, r, sweep]() {
            runChain(opt, sweep, r,
                     outputs[static_cast<std::size_t>(r)]);
        });
    }
    runner.run();

    wl::banner(std::string("testbed: ") +
               (opt.k2 ? "K2" : "baseline Linux"));
    for (int r = 0; r < opt.runs; ++r) {
        if (opt.runs > 1)
            std::printf("%s-- run %d (seed %llu) --\n\n",
                        r == 0 ? "" : "\n", r,
                        static_cast<unsigned long long>(
                            opt.seed + static_cast<std::uint64_t>(r)));
        std::fputs(outputs[static_cast<std::size_t>(r)].text.c_str(),
                   stdout);
    }

    const RunOutput &first = outputs.front();
    if (!opt.metricsFile.empty()) {
        if (!writeFile(opt.metricsFile, first.metricsJson))
            return 1;
        std::printf("\nmetrics: %s (%zu metrics)\n",
                    opt.metricsFile.c_str(), first.metricsCount);
    }
    if (!opt.traceFile.empty()) {
        if (!writeFile(opt.traceFile, first.traceJson))
            return 1;
        std::printf("trace: %s (%zu events, %llu dropped)\n",
                    opt.traceFile.c_str(), first.traceEvents,
                    static_cast<unsigned long long>(first.traceDropped));
    }
    return 0;
}
