/**
 * @file
 * The `fleet` binary: fleet-scale device population simulation.
 *
 *   fleet [--devices=N] [--hours=H] [--mix=NAME] [--seed=N]
 *         [--jobs=N] [--sweep=warm|cold] [--faults=SPEC]
 *         [--replicas=N] [--diurnal=AMPL] [--report=FILE]
 *
 * Simulates N devices' background traffic over H hours (see
 * DESIGN.md §11-12): per-kind episode costs are measured once per
 * unique config on a warm-forked K2 testbed (memoized), then the
 * device population's episode timelines are synthesised in batches
 * through mergeable quantile sketches. --diurnal=AMPL modulates
 * arrival rates sinusoidally over the day with amplitude AMPL in
 * [0, 1] (0 = off, the default, byte-identical to omitting the
 * flag). Prints fleet-level energy/latency distributions with
 * p50/p90/p99/p99.9 tails; --report additionally writes the sketches
 * as a JSON artifact.
 *
 * Both stdout and the report file are byte-identical at any --jobs=N
 * and between --sweep=warm|cold; the host-side throughput line
 * (simulated device-hours per second) goes to stderr so artifacts
 * stay diffable.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "fault/plan.h"
#include "workloads/fleet.h"
#include "workloads/report.h"
#include "workloads/sweep.h"
#include "workloads/warm.h"

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: fleet [--devices=N] [--hours=H] [--mix=NAME] "
        "[--seed=N]\n"
        "             [--jobs=N] [--sweep=warm|cold] "
        "[--faults=SPEC]\n"
        "             [--replicas=N] [--diurnal=AMPL] "
        "[--report=FILE]\n"
        "mixes: %s\n",
        k2::wl::mixNames().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace k2;

    wl::FleetConfig cfg;
    std::string reportFile;
    try {
        cfg.jobs = wl::parseJobsFlag(argc, argv);
        cfg.sweep = wl::parseSweepFlag(argc, argv);
        cfg.faults = wl::parseFaultsFlag(argc, argv);
        cfg.devices = wl::parseUintFlag(argc, argv, "--devices=",
                                        cfg.devices, 1, 100000000);
        cfg.hours = wl::parseFloatFlag(argc, argv, "--hours=",
                                       cfg.hours, 1e6);
        cfg.mix = wl::parseStringFlag(argc, argv, "--mix=", cfg.mix);
        cfg.seed =
            wl::parseUintFlag(argc, argv, "--seed=", cfg.seed, 0,
                              UINT64_MAX);
        cfg.replicas = static_cast<std::size_t>(wl::parseUintFlag(
            argc, argv, "--replicas=", cfg.replicas, 1, 15));
        // Hand-parsed: parseFloatFlag rejects 0, but an explicit
        // --diurnal=0 (off) is valid and must equal omitting it.
        const std::string diurnal =
            wl::parseStringFlag(argc, argv, "--diurnal=", "");
        if (!diurnal.empty()) {
            char *end = nullptr;
            cfg.diurnal = std::strtod(diurnal.c_str(), &end);
            if (end == diurnal.c_str() || *end != '\0' ||
                !(cfg.diurnal >= 0.0 && cfg.diurnal <= 1.0)) {
                std::fprintf(
                    stderr,
                    "--diurnal amplitude must be in [0, 1]\n");
                usage();
                return 2;
            }
        }
        reportFile =
            wl::parseStringFlag(argc, argv, "--report=", "");
        if (argc != 1) {
            std::fprintf(stderr, "unknown argument '%s'\n", argv[1]);
            usage();
            return 2;
        }
        if (!wl::findMix(cfg.mix)) {
            std::fprintf(stderr, "unknown mix '%s'\n",
                         cfg.mix.c_str());
            usage();
            return 2;
        }
        // Validate the fault spec up front so a typo fails fast
        // instead of surfacing from inside a sweep cell.
        if (!cfg.faults.empty())
            (void)fault::FaultPlan::parse(cfg.faults);
    } catch (const sim::FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        usage();
        return 2;
    }

    const auto start = std::chrono::steady_clock::now();
    wl::FleetResult res;
    try {
        res = wl::runFleet(cfg);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "fleet failed: %s\n", e.what());
        return 1;
    }
    const double hostSec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    wl::banner("fleet population simulation");
    std::fputs(res.text.c_str(), stdout);

    if (!reportFile.empty()) {
        std::ofstream os(reportFile, std::ios::binary);
        os << res.json;
        if (!os.good()) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         reportFile.c_str());
            return 1;
        }
        std::fprintf(stderr, "report: %s\n", reportFile.c_str());
    }

    // Host throughput to stderr: wall-clock facts must not pollute
    // the deterministic artifact.
    const double deviceHours =
        static_cast<double>(cfg.devices) * cfg.hours;
    std::fprintf(stderr,
                 "fleet: %.0f device-hours in %.2f s host time "
                 "(%.0f dh/s, %llu cells, %s)\n",
                 deviceHours, hostSec,
                 hostSec > 0 ? deviceHours / hostSec : 0.0,
                 static_cast<unsigned long long>(res.cells),
                 wl::sweepModeName(cfg.sweep));
    return 0;
}
