/**
 * @file
 * A ready-to-run system fixture: a SystemImage (K2 or baseline Linux)
 * with the three evaluated services attached -- the DMA driver, the
 * ext2 filesystem on a ramdisk, and the UDP stack -- and the shared
 * DMA interrupt under K2 routing. Used by the benches, the examples,
 * and the integration tests.
 */

#ifndef K2_WORKLOADS_TESTBED_H
#define K2_WORKLOADS_TESTBED_H

#include <memory>

#include "baseline/linux_system.h"
#include "os/k2_system.h"
#include "svc/block.h"
#include "svc/dma_driver.h"
#include "svc/ext2.h"
#include "svc/udp.h"

namespace k2 {
namespace wl {

class Testbed
{
  public:
    /** Build a K2 testbed. */
    static Testbed makeK2(os::K2Config cfg = {});

    /** Build a baseline-Linux testbed. */
    static Testbed makeLinux(baseline::LinuxConfig cfg = {});

    Testbed(Testbed &&) = default;
    Testbed &operator=(Testbed &&) = default;

    os::SystemImage &sys() { return *sys_; }
    os::K2System *k2() { return k2_; } //!< Null on the baseline.
    svc::RamDisk &disk() { return *disk_; }
    svc::Ext2Fs &fs() { return *fs_; }
    svc::DmaDriver &dma() { return *dma_; }
    svc::UdpStack &udp() { return *udp_; }
    kern::Process &proc() { return *proc_; }
    sim::Engine &engine() { return sys_->engine(); }

    /**
     * Register the whole stack's metrics: the system image (sim, soc,
     * kernels, and -- under K2 -- the os components) plus the attached
     * service drivers under "svc.*".
     */
    void registerMetrics(obs::MetricsRegistry &reg);

    /**
     * Capture/restore the full fixture: the system image (engine, SoC,
     * kernels, OS services) and the four attached service drivers.
     * Quiesce first (engine().run()).
     */
    void snapState(snap::Io &io);

  private:
    Testbed() = default;
    void attachServices();

    std::unique_ptr<os::SystemImage> sys_;
    os::K2System *k2_ = nullptr;
    std::unique_ptr<svc::RamDisk> disk_;
    std::unique_ptr<svc::Ext2Fs> fs_;
    std::unique_ptr<svc::DmaDriver> dma_;
    std::unique_ptr<svc::UdpStack> udp_;
    kern::Process *proc_ = nullptr;
};

} // namespace wl
} // namespace k2

#endif // K2_WORKLOADS_TESTBED_H
