#include "workloads/fleet.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "fault/plan.h"
#include "obs/sketch_json.h"
#include "sim/random.h"
#include "workloads/benchmarks.h"
#include "workloads/report.h"
#include "workloads/sweep.h"

namespace k2 {
namespace wl {

namespace {

/** Devices per sweep cell. Fixed (never derived from the job count)
 *  so the cell partition -- and with it every RNG stream -- is
 *  independent of --jobs=N. */
constexpr std::uint64_t kCellDevices = 128;

const TrafficMix kMixes[] = {
    {"default", "background mix of a mainstream smart device",
     {12.0, 20.0, 2.0},
     {2048, 256, 8192},
     {65536, 4096, 262144}},
    {"sensor_heavy", "wearable-style continuous sensing",
     {60.0, 6.0, 1.0},
     {4096, 256, 8192},
     {131072, 2048, 131072}},
    {"push_heavy", "messaging-centric device, chatty push path",
     {4.0, 90.0, 2.0},
     {2048, 256, 8192},
     {32768, 8192, 131072}},
    {"sync_heavy", "media device syncing content periodically",
     {6.0, 10.0, 12.0},
     {2048, 256, 32768},
     {65536, 4096, 1048576}},
    {"idle", "mostly-asleep device, sparse heartbeats",
     {1.0, 4.0, 0.25},
     {1024, 256, 4096},
     {8192, 1024, 32768}},
};

/**
 * Per-device RNG stream ids: every device owns a CounterRng family
 * keyed (fleet seed, device id, stream), so no draw depends on cell
 * or lane placement, and each synthesis pass reads its own stream at
 * whatever offsets it likes (DESIGN.md §12).
 */
enum : std::uint32_t
{
    kStreamModel = 0,   //!< Device parameter draw (sequential).
    kStreamCount = 1,   //!< + kind: episode/candidate count draw.
    kStreamEpisode = 4, //!< + kind: packed per-episode draw (fill).
    kStreamThin = 10,   //!< + kind: diurnal thinning draws (fill).
};

/** Draw a device's parameters from its model stream. */
DeviceModel
drawDevice(sim::CounterRng &rng, std::uint64_t id)
{
    DeviceModel dev;
    dev.id = id;
    dev.batteryClass = static_cast<std::uint8_t>(rng.below(3));
    // Small batteries pay more per byte (worse rails, hotter DRAM);
    // big devices amortise better.
    constexpr double kBatteryScale[3] = {1.25, 1.0, 0.85};
    dev.energyScale = kBatteryScale[dev.batteryClass];
    for (std::size_t k = 0; k < kFleetKinds; ++k) {
        // App-mix jitter: how much of each traffic kind this device
        // sees, and how large its payloads run.
        dev.rateScale[k] = 0.6 + 0.8 * rng.uniform();
        dev.sizeScale[k] = 0.7 + 0.6 * rng.uniform();
    }
    return dev;
}

/** Episodes per synthesis batch: bounds scratch memory (and keeps it
 *  cache-resident) however long the window is. */
constexpr std::size_t kChunk = 2048;

/** Flat per-chunk arrays the batched synthesis loop streams through:
 *  raw RNG draws in, priced episodes out. */
struct Scratch
{
    std::uint64_t raw[kChunk];
    double energy[kChunk];
    double latency[kChunk];
};

/**
 * Episode count for one (device, kind) under diurnal modulation, by
 * Poisson thinning: draw candidates at the peak rate
 * lambda0 * (1 + A), then accept each with probability
 * lambda(t) / lambdaMax. Candidate times are iid uniform over the
 * window -- the order-free view of a Poisson process -- and episodes
 * carry no timestamps downstream, so only the accepted count is
 * kept. Deterministic: candidates come from the kind's count stream,
 * thinning draws from its own stream, both keyed (seed, id) only.
 */
std::uint64_t
diurnalCount(sim::CounterRng &countRng, std::uint64_t seed,
             std::uint64_t id, std::size_t k, double mean,
             double ampl, double hours)
{
    const std::uint64_t candidates =
        sim::poisson(countRng, mean * (1.0 + ampl));
    sim::CounterRng thinRng(
        seed, id, kStreamThin + static_cast<std::uint32_t>(k));
    constexpr double kTwoPi = 6.283185307179586476925287;
    const double peak = 1.0 + ampl;
    std::uint64_t raw[kChunk];
    std::uint64_t accepted = 0;
    std::uint64_t done = 0;
    while (done < candidates) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(kChunk, candidates - done));
        thinRng.fill(done, raw, n);
        for (std::size_t i = 0; i < n; ++i) {
            // Low half: candidate time as a window fraction; high
            // half: the acceptance uniform.
            const double tHours =
                hours * (static_cast<double>(static_cast<std::uint32_t>(
                             raw[i])) *
                         0x1.0p-32);
            const double rate =
                1.0 + ampl * std::sin(kTwoPi * tHours / 24.0);
            const double u =
                static_cast<double>(raw[i] >> 32) * 0x1.0p-32;
            accepted += (u * peak < rate) ? 1 : 0;
        }
        done += n;
    }
    return accepted;
}

/** The measured calibration points per kind: two payload sizes so a
 *  base + per-byte line can be fitted. */
constexpr std::uint64_t kCalibBytes[kFleetKinds][2] = {
    {8192, 131072},  // Sensor: DMA batch totals.
    {2048, 32768},   // Push: UDP loopback totals.
    {8192, 131072},  // Sync: ext2 bytes (2 files each).
};

EpisodeResult
runCalibEpisode(Testbed &tb, FleetKind kind, std::uint64_t bytes)
{
    switch (kind) {
      case FleetKind::Sensor:
        return runEpisodeWarm(tb.sys(), tb.proc(), "fleet.sensor",
                              dmaCopy(tb.dma(), 4096, bytes));
      case FleetKind::Push:
        return runEpisodeWarm(tb.sys(), tb.proc(), "fleet.push",
                              udpLoopback(tb.udp(), 8192, bytes));
      case FleetKind::Sync:
        return runEpisodeWarm(tb.sys(), tb.proc(), "fleet.sync",
                              ext2Sync(tb.fs(), bytes / 2, 2));
    }
    K2_PANIC("bad fleet kind");
}

/** Render one sketch as a report row. */
std::vector<std::string>
sketchRow(const std::string &label, const sim::QuantileSketch &sk,
          int decimals)
{
    return {label,
            std::to_string(sk.count()),
            fmt(sk.mean(), decimals),
            fmt(sk.percentile(0.50), decimals),
            fmt(sk.percentile(0.90), decimals),
            fmt(sk.percentile(0.99), decimals),
            fmt(sk.percentile(0.999), decimals),
            fmt(sk.max(), decimals)};
}

} // namespace

const char *
fleetKindName(FleetKind kind)
{
    switch (kind) {
      case FleetKind::Sensor:
        return "sensor";
      case FleetKind::Push:
        return "push";
      case FleetKind::Sync:
        return "sync";
    }
    return "?";
}

const TrafficMix *
findMix(const std::string &name)
{
    for (const TrafficMix &mix : kMixes) {
        if (name == mix.name)
            return &mix;
    }
    return nullptr;
}

std::string
mixNames()
{
    std::string names;
    for (const TrafficMix &mix : kMixes) {
        if (!names.empty())
            names += ", ";
        names += mix.name;
    }
    return names;
}

DeviceModel
makeDevice(std::uint64_t seed, std::uint64_t id, const TrafficMix &mix)
{
    (void)mix; // Parameters are mix-relative scales.
    sim::CounterRng rng(seed, id, kStreamModel);
    return drawDevice(rng, id);
}

Calibration
calibrate(Testbed &tb)
{
    Calibration cal;
    for (std::size_t k = 0; k < kFleetKinds; ++k) {
        const auto kind = static_cast<FleetKind>(k);
        const EpisodeResult lo =
            runCalibEpisode(tb, kind, kCalibBytes[k][0]);
        const EpisodeResult hi =
            runCalibEpisode(tb, kind, kCalibBytes[k][1]);
        K2_ASSERT(hi.bytes > lo.bytes);
        EpisodeModel &m = cal.kinds[k];
        const double db = static_cast<double>(hi.bytes - lo.bytes);
        m.energyPerByteUj = (hi.energyUj - lo.energyUj) / db;
        m.energyBaseUj =
            lo.energyUj -
            m.energyPerByteUj * static_cast<double>(lo.bytes);
        const double loUs = sim::toSec(lo.runTime) * 1e6;
        const double hiUs = sim::toSec(hi.runTime) * 1e6;
        m.latencyPerByteUs = (hiUs - loUs) / db;
        m.latencyBaseUs =
            loUs - m.latencyPerByteUs * static_cast<double>(lo.bytes);
    }
    return cal;
}

const Calibration &
calibrationFor(SweepMode mode, const std::string &key,
               const std::function<os::K2Config()> &makeConfig)
{
    // thread_local like the warm-fixture pool: lanes never contend,
    // and the cache lives for the thread -- repeated runFleet calls
    // (a parameter sweep) pay one calibration per unique config.
    thread_local std::map<std::string, Calibration> cache;
    // Mode-qualified key: a cold-mode caller still measures a real
    // cold boot the first time, as the historical cost model expects.
    std::string full =
        (mode == SweepMode::Cold ? "cold:" : "warm:") + key;
    auto it = cache.find(full);
    if (it == cache.end()) {
        Testbed &tb = warmK2(mode, key, makeConfig);
        it = cache.emplace(std::move(full), calibrate(tb)).first;
    }
    return it->second;
}

void
FleetStats::merge(const FleetStats &other)
{
    episodeLatencyUs.merge(other.episodeLatencyUs);
    deviceEnergyUj.merge(other.deviceEnergyUj);
    for (std::size_t k = 0; k < kFleetKinds; ++k) {
        kindEnergyUj[k].merge(other.kindEnergyUj[k]);
        episodes[k] += other.episodes[k];
    }
    bytes += other.bytes;
    devices += other.devices;
}

sim::QuantileSketch
FleetStats::episodeEnergy() const
{
    sim::QuantileSketch all;
    for (const sim::QuantileSketch &sk : kindEnergyUj)
        all.merge(sk);
    return all;
}

void
synthesizeDevice(const TrafficMix &mix, const Calibration &cal,
                 std::uint64_t seed, std::uint64_t id, double hours,
                 FleetStats &into, double diurnal)
{
    sim::CounterRng modelRng(seed, id, kStreamModel);
    const DeviceModel dev = drawDevice(modelRng, id);

    Scratch s;
    // Four device-total accumulators, combined in a fixed grouping
    // at the end: a single `total += energy` chain would bound the
    // episode loop at the addsd latency. The lane pattern depends
    // only on the chunk-local episode index (chunks are fixed-size),
    // so the total is as placement-independent as a sequential sum.
    double tot[4] = {0.0, 0.0, 0.0, 0.0};
    std::uint64_t totalBytes = 0;
    for (std::size_t k = 0; k < kFleetKinds; ++k) {
        const double mean = mix.perHour[k] * dev.rateScale[k] * hours;
        if (mean <= 0.0)
            continue;
        const EpisodeModel &m = cal.kinds[k];
        // Per-(device, kind) constants, hoisted so the episode loop
        // is pure arithmetic on the scratch arrays.
        const double energyBase = m.energyBaseUj * dev.energyScale;
        const double energyPerB = m.energyPerByteUj * dev.energyScale;
        const double latencyBase = m.latencyBaseUs;
        const double latencyPerB = m.latencyPerByteUs;
        const double sizeScale = dev.sizeScale[k];
        const std::uint64_t minB = mix.minBytes[k];
        const std::uint64_t span = mix.maxBytes[k] - minB + 1;
        // The 32-bit payload draw below needs span * 2^32 < 2^64.
        K2_ASSERT(span <= 0xFFFFFFFFull);

        // Episode *count* first -- O(1) per kind instead of walking
        // O(episodes) exponential inter-arrivals. Arrival times are
        // not observable downstream (episodes are exchangeable within
        // the window), so the count is the whole timeline.
        sim::CounterRng countRng(
            seed, id, kStreamCount + static_cast<std::uint32_t>(k));
        const std::uint64_t episodes =
            diurnal > 0.0
                ? diurnalCount(countRng, seed, id, k, mean, diurnal,
                               hours)
                : sim::poisson(countRng, mean);

        // One packed 64-bit draw per episode: low 32 bits size the
        // payload by multiply-shift over [minBytes, maxBytes], the
        // two high 16-bit halves are the energy/latency noise
        // uniforms (quantised to 2^-16 -- far below the +/-5% noise
        // band they modulate).
        sim::CounterRng epRng(
            seed, id, kStreamEpisode + static_cast<std::uint32_t>(k));
        sim::QuantileSketch &kindSk = into.kindEnergyUj[k];
        std::uint64_t done = 0;
        while (done < episodes) {
            const std::size_t n = static_cast<std::size_t>(
                std::min<std::uint64_t>(kChunk, episodes - done));
            epRng.fill(done, s.raw, n);
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint64_t x = s.raw[i];
                // Signed intermediate casts throughout: the values
                // all fit in int64, and signed int<->double is one
                // instruction on the baseline target where unsigned
                // needs a branchy fixup.
                const std::int64_t raw = static_cast<std::int64_t>(
                    minB +
                    ((static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(x)) *
                      span) >>
                     32));
                const std::int64_t payload = std::max<std::int64_t>(
                    16, static_cast<std::int64_t>(
                            static_cast<double>(raw) * sizeScale +
                            0.5));
                const double b = static_cast<double>(payload);
                // Per-episode noise models interference the
                // calibration episode (run in isolation) cannot see.
                const double energyUj =
                    (energyBase + energyPerB * b) *
                    (0.95 +
                     0.1 * (static_cast<double>(static_cast<int>(
                                (x >> 32) & 0xFFFF)) *
                            0x1.0p-16));
                const double latencyUs =
                    (latencyBase + latencyPerB * b) *
                    (0.95 + 0.1 * (static_cast<double>(
                                       static_cast<int>(x >> 48)) *
                                   0x1.0p-16));
                s.energy[i] = energyUj;
                s.latency[i] = latencyUs;
                totalBytes += static_cast<std::uint64_t>(payload);
                tot[i & 3] += energyUj;
            }
            kindSk.sampleBatch(s.energy, n);
            into.episodeLatencyUs.sampleBatch(s.latency, n);
            done += n;
        }
        into.episodes[k] += episodes;
    }
    into.bytes += totalBytes;
    into.deviceEnergyUj.sample((tot[0] + tot[1]) + (tot[2] + tot[3]));
    ++into.devices;
}

FleetResult
runFleet(const FleetConfig &cfg)
{
    const TrafficMix *mix = findMix(cfg.mix);
    if (!mix)
        K2_FATAL("unknown traffic mix '%s' (available: %s)",
                 cfg.mix.c_str(), mixNames().c_str());
    if (cfg.devices == 0)
        K2_FATAL("--devices must be at least 1");
    if (!(cfg.hours > 0))
        K2_FATAL("--hours must be positive");
    if (!(cfg.diurnal >= 0.0 && cfg.diurnal <= 1.0))
        K2_FATAL("--diurnal amplitude must be in [0, 1]");

    const std::uint64_t cells =
        (cfg.devices + kCellDevices - 1) / kCellDevices;

    // Streaming reduction: one partial per lane, merged after the
    // barrier. Memory is O(lanes), not O(cells) -- a million-device
    // fleet reduces through the same handful of sketches.
    struct Lane
    {
        FleetStats stats;
        Calibration cal;
        bool calibrated = false;
    };
    SweepRunner runner(cfg.jobs);
    std::vector<Lane> lanes(runner.lanes());

    // The replica suffix appears only when the degree differs from
    // the default so replicas=1 runs keep the pre-replication key.
    std::string fixtureKey = "fleet:" + cfg.faults;
    if (cfg.replicas > 1)
        fixtureKey += ":r" + std::to_string(cfg.replicas);
    const auto makeConfig = [&cfg]() {
        os::K2Config kcfg;
        if (!cfg.faults.empty())
            kcfg.faults = fault::FaultPlan::parse(cfg.faults);
        kcfg.replicas = std::max<std::size_t>(cfg.replicas, 1);
        return kcfg;
    };

    for (std::uint64_t c = 0; c < cells; ++c) {
        const std::uint64_t lo = c * kCellDevices;
        const std::uint64_t hi =
            std::min(cfg.devices, lo + kCellDevices);
        runner.submitLane([&cfg, &lanes, &fixtureKey, &makeConfig,
                           mix, lo, hi](std::size_t laneIdx) {
            Lane &lane = lanes.at(laneIdx);
            // Ground the episode models in the full simulation --
            // memoized: one measurement per (sweep mode, config) per
            // worker thread, bit-identical to recalibrating every
            // cell because a warm fork restores the exact post-boot
            // state (and cold boots are reproducible). Cold mode
            // still pays its first boot cold, preserving the
            // historical cost model's entry point.
            const Calibration &cal =
                calibrationFor(cfg.sweep, fixtureKey, makeConfig);
            if (!lane.calibrated) {
                lane.cal = cal;
                lane.calibrated = true;
            }
            for (std::uint64_t id = lo; id < hi; ++id)
                synthesizeDevice(*mix, cal, cfg.seed, id, cfg.hours,
                                 lane.stats, cfg.diurnal);
        });
    }
    runner.run();

    FleetResult res;
    res.cells = cells;
    bool haveCal = false;
    for (const Lane &lane : lanes) {
        res.stats.merge(lane.stats);
        if (lane.calibrated && !haveCal) {
            res.calibration = lane.cal;
            haveCal = true;
        }
    }

    // Render the report. Deliberately silent about --jobs and
    // --sweep: the artifact must diff clean across both. --diurnal
    // appears only when set, keeping unset artifacts byte-identical.
    const FleetStats &fs = res.stats;
    const sim::QuantileSketch episodeEnergyUj = fs.episodeEnergy();
    std::uint64_t totalEpisodes = 0;
    for (std::size_t k = 0; k < kFleetKinds; ++k)
        totalEpisodes += fs.episodes[k];

    std::string text = sim::strPrintf(
        "fleet: mix=%s (%s)\n"
        "devices=%llu hours=%.3f seed=%llu device-hours=%.1f\n"
        "%s"
        "episodes=%llu (sensor %llu, push %llu, sync %llu) "
        "payload=%.1f MB\n"
        "fleet energy=%.3f J  mean device power=%.2f uW\n\n",
        mix->name, mix->summary,
        static_cast<unsigned long long>(cfg.devices), cfg.hours,
        static_cast<unsigned long long>(cfg.seed),
        static_cast<double>(cfg.devices) * cfg.hours,
        cfg.diurnal > 0.0
            ? sim::strPrintf("diurnal=%.3f\n", cfg.diurnal).c_str()
            : "",
        static_cast<unsigned long long>(totalEpisodes),
        static_cast<unsigned long long>(fs.episodes[0]),
        static_cast<unsigned long long>(fs.episodes[1]),
        static_cast<unsigned long long>(fs.episodes[2]),
        static_cast<double>(fs.bytes) / 1e6,
        episodeEnergyUj.sum() / 1e6,
        fs.deviceEnergyUj.sum() /
            (static_cast<double>(cfg.devices) * cfg.hours * 3600.0));

    Table table({"metric", "count", "mean", "p50", "p90", "p99",
                 "p99.9", "max"});
    table.addRow(sketchRow("episode energy (uJ)", episodeEnergyUj,
                           1));
    table.addRow(
        sketchRow("episode latency (us)", fs.episodeLatencyUs, 1));
    table.addRow(
        sketchRow("device energy (uJ)", fs.deviceEnergyUj, 0));
    for (std::size_t k = 0; k < kFleetKinds; ++k)
        table.addRow(sketchRow(
            std::string(fleetKindName(static_cast<FleetKind>(k))) +
                " episode energy (uJ)",
            fs.kindEnergyUj[k], 1));
    text += table.render();
    res.text = std::move(text);

    obs::NamedSketches named = {
        {"fleet.episode.energy_uj", &episodeEnergyUj},
        {"fleet.episode.latency_us", &fs.episodeLatencyUs},
        {"fleet.device.energy_uj", &fs.deviceEnergyUj},
    };
    for (std::size_t k = 0; k < kFleetKinds; ++k)
        named.emplace_back(
            std::string("fleet.kind.") +
                fleetKindName(static_cast<FleetKind>(k)) +
                ".energy_uj",
            &fs.kindEnergyUj[k]);
    res.json = obs::sketchJson(named);
    return res;
}

} // namespace wl
} // namespace k2
