#include "workloads/fleet.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "fault/plan.h"
#include "obs/sketch_json.h"
#include "sim/random.h"
#include "workloads/benchmarks.h"
#include "workloads/report.h"
#include "workloads/sweep.h"

namespace k2 {
namespace wl {

namespace {

/** Devices per sweep cell. Fixed (never derived from the job count)
 *  so the cell partition -- and with it every RNG stream -- is
 *  independent of --jobs=N. */
constexpr std::uint64_t kCellDevices = 128;

const TrafficMix kMixes[] = {
    {"default", "background mix of a mainstream smart device",
     {12.0, 20.0, 2.0},
     {2048, 256, 8192},
     {65536, 4096, 262144}},
    {"sensor_heavy", "wearable-style continuous sensing",
     {60.0, 6.0, 1.0},
     {4096, 256, 8192},
     {131072, 2048, 131072}},
    {"push_heavy", "messaging-centric device, chatty push path",
     {4.0, 90.0, 2.0},
     {2048, 256, 8192},
     {32768, 8192, 131072}},
    {"sync_heavy", "media device syncing content periodically",
     {6.0, 10.0, 12.0},
     {2048, 256, 32768},
     {65536, 4096, 1048576}},
    {"idle", "mostly-asleep device, sparse heartbeats",
     {1.0, 4.0, 0.25},
     {1024, 256, 4096},
     {8192, 1024, 32768}},
};

/**
 * SplitMix64 finalizer over (seed, id): every device gets its own
 * decorrelated RNG stream, derived only from fleet seed and device
 * id -- never from cell or lane placement.
 */
std::uint64_t
deviceSeed(std::uint64_t seed, std::uint64_t id)
{
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (id + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** Draw a device's parameters from an already-seeded stream. */
DeviceModel
drawDevice(sim::Rng &rng, std::uint64_t id)
{
    DeviceModel dev;
    dev.id = id;
    dev.batteryClass = static_cast<std::uint8_t>(rng.below(3));
    // Small batteries pay more per byte (worse rails, hotter DRAM);
    // big devices amortise better.
    constexpr double kBatteryScale[3] = {1.25, 1.0, 0.85};
    dev.energyScale = kBatteryScale[dev.batteryClass];
    for (std::size_t k = 0; k < kFleetKinds; ++k) {
        // App-mix jitter: how much of each traffic kind this device
        // sees, and how large its payloads run.
        dev.rateScale[k] = 0.6 + 0.8 * rng.uniform();
        dev.sizeScale[k] = 0.7 + 0.6 * rng.uniform();
    }
    return dev;
}

/** Exponential inter-arrival draw (Poisson episode arrivals). */
double
expDraw(sim::Rng &rng, double ratePerSec)
{
    return -std::log(1.0 - rng.uniform()) / ratePerSec;
}

/** The measured calibration points per kind: two payload sizes so a
 *  base + per-byte line can be fitted. */
constexpr std::uint64_t kCalibBytes[kFleetKinds][2] = {
    {8192, 131072},  // Sensor: DMA batch totals.
    {2048, 32768},   // Push: UDP loopback totals.
    {8192, 131072},  // Sync: ext2 bytes (2 files each).
};

EpisodeResult
runCalibEpisode(Testbed &tb, FleetKind kind, std::uint64_t bytes)
{
    switch (kind) {
      case FleetKind::Sensor:
        return runEpisodeWarm(tb.sys(), tb.proc(), "fleet.sensor",
                              dmaCopy(tb.dma(), 4096, bytes));
      case FleetKind::Push:
        return runEpisodeWarm(tb.sys(), tb.proc(), "fleet.push",
                              udpLoopback(tb.udp(), 8192, bytes));
      case FleetKind::Sync:
        return runEpisodeWarm(tb.sys(), tb.proc(), "fleet.sync",
                              ext2Sync(tb.fs(), bytes / 2, 2));
    }
    K2_PANIC("bad fleet kind");
}

/** Render one sketch as a report row. */
std::vector<std::string>
sketchRow(const std::string &label, const sim::QuantileSketch &sk,
          int decimals)
{
    return {label,
            std::to_string(sk.count()),
            fmt(sk.mean(), decimals),
            fmt(sk.percentile(0.50), decimals),
            fmt(sk.percentile(0.90), decimals),
            fmt(sk.percentile(0.99), decimals),
            fmt(sk.percentile(0.999), decimals),
            fmt(sk.max(), decimals)};
}

} // namespace

const char *
fleetKindName(FleetKind kind)
{
    switch (kind) {
      case FleetKind::Sensor:
        return "sensor";
      case FleetKind::Push:
        return "push";
      case FleetKind::Sync:
        return "sync";
    }
    return "?";
}

const TrafficMix *
findMix(const std::string &name)
{
    for (const TrafficMix &mix : kMixes) {
        if (name == mix.name)
            return &mix;
    }
    return nullptr;
}

std::string
mixNames()
{
    std::string names;
    for (const TrafficMix &mix : kMixes) {
        if (!names.empty())
            names += ", ";
        names += mix.name;
    }
    return names;
}

DeviceModel
makeDevice(std::uint64_t seed, std::uint64_t id, const TrafficMix &mix)
{
    (void)mix; // Parameters are mix-relative scales.
    sim::Rng rng(deviceSeed(seed, id));
    return drawDevice(rng, id);
}

Calibration
calibrate(Testbed &tb)
{
    Calibration cal;
    for (std::size_t k = 0; k < kFleetKinds; ++k) {
        const auto kind = static_cast<FleetKind>(k);
        const EpisodeResult lo =
            runCalibEpisode(tb, kind, kCalibBytes[k][0]);
        const EpisodeResult hi =
            runCalibEpisode(tb, kind, kCalibBytes[k][1]);
        K2_ASSERT(hi.bytes > lo.bytes);
        EpisodeModel &m = cal.kinds[k];
        const double db = static_cast<double>(hi.bytes - lo.bytes);
        m.energyPerByteUj = (hi.energyUj - lo.energyUj) / db;
        m.energyBaseUj =
            lo.energyUj -
            m.energyPerByteUj * static_cast<double>(lo.bytes);
        const double loUs = sim::toSec(lo.runTime) * 1e6;
        const double hiUs = sim::toSec(hi.runTime) * 1e6;
        m.latencyPerByteUs = (hiUs - loUs) / db;
        m.latencyBaseUs =
            loUs - m.latencyPerByteUs * static_cast<double>(lo.bytes);
    }
    return cal;
}

void
FleetStats::merge(const FleetStats &other)
{
    episodeEnergyUj.merge(other.episodeEnergyUj);
    episodeLatencyUs.merge(other.episodeLatencyUs);
    deviceEnergyUj.merge(other.deviceEnergyUj);
    for (std::size_t k = 0; k < kFleetKinds; ++k) {
        kindEnergyUj[k].merge(other.kindEnergyUj[k]);
        episodes[k] += other.episodes[k];
    }
    bytes += other.bytes;
    devices += other.devices;
}

void
synthesizeDevice(const TrafficMix &mix, const Calibration &cal,
                 std::uint64_t seed, std::uint64_t id, double hours,
                 FleetStats &into)
{
    // One RNG stream per device: the model draw consumes a fixed
    // prefix, the episode timeline continues on the same stream.
    sim::Rng rng(deviceSeed(seed, id));
    const DeviceModel dev = drawDevice(rng, id);

    const double windowSec = hours * 3600.0;
    double deviceTotalUj = 0.0;
    for (std::size_t k = 0; k < kFleetKinds; ++k) {
        const double ratePerSec =
            mix.perHour[k] * dev.rateScale[k] / 3600.0;
        if (ratePerSec <= 0.0)
            continue;
        const EpisodeModel &m = cal.kinds[k];
        const std::uint64_t span =
            mix.maxBytes[k] - mix.minBytes[k] + 1;
        for (double t = expDraw(rng, ratePerSec); t < windowSec;
             t += expDraw(rng, ratePerSec)) {
            const double raw = static_cast<double>(
                mix.minBytes[k] + rng.below(span));
            const std::uint64_t payload = std::max<std::uint64_t>(
                16, static_cast<std::uint64_t>(
                        std::llround(raw * dev.sizeScale[k])));
            const double b = static_cast<double>(payload);
            // Per-episode noise models interference the calibration
            // episode (run in isolation) cannot see.
            const double energyUj =
                (m.energyBaseUj + m.energyPerByteUj * b) *
                dev.energyScale * (0.95 + 0.1 * rng.uniform());
            const double latencyUs =
                (m.latencyBaseUs + m.latencyPerByteUs * b) *
                (0.95 + 0.1 * rng.uniform());
            into.episodeEnergyUj.sample(energyUj);
            into.episodeLatencyUs.sample(latencyUs);
            into.kindEnergyUj[k].sample(energyUj);
            ++into.episodes[k];
            into.bytes += payload;
            deviceTotalUj += energyUj;
        }
    }
    into.deviceEnergyUj.sample(deviceTotalUj);
    ++into.devices;
}

FleetResult
runFleet(const FleetConfig &cfg)
{
    const TrafficMix *mix = findMix(cfg.mix);
    if (!mix)
        K2_FATAL("unknown traffic mix '%s' (available: %s)",
                 cfg.mix.c_str(), mixNames().c_str());
    if (cfg.devices == 0)
        K2_FATAL("--devices must be at least 1");
    if (!(cfg.hours > 0))
        K2_FATAL("--hours must be positive");

    const std::uint64_t cells =
        (cfg.devices + kCellDevices - 1) / kCellDevices;

    // Streaming reduction: one partial per lane, merged after the
    // barrier. Memory is O(lanes), not O(cells) -- a million-device
    // fleet reduces through the same handful of sketches.
    struct Lane
    {
        FleetStats stats;
        Calibration cal;
        bool calibrated = false;
    };
    SweepRunner runner(cfg.jobs);
    std::vector<Lane> lanes(runner.lanes());

    const std::string fixtureKey = "fleet:" + cfg.faults;
    const auto makeConfig = [&cfg]() {
        os::K2Config kcfg;
        if (!cfg.faults.empty())
            kcfg.faults = fault::FaultPlan::parse(cfg.faults);
        return kcfg;
    };

    for (std::uint64_t c = 0; c < cells; ++c) {
        const std::uint64_t lo = c * kCellDevices;
        const std::uint64_t hi =
            std::min(cfg.devices, lo + kCellDevices);
        runner.submitLane([&cfg, &lanes, &fixtureKey, &makeConfig,
                           mix, lo, hi](std::size_t laneIdx) {
            Lane &lane = lanes.at(laneIdx);
            // Ground the episode models in the full simulation. Warm
            // mode calibrates once per lane (every fork restores the
            // identical post-boot state, so per-cell recalibration
            // would measure the same bytes); cold mode pays a boot +
            // calibration per cell, the historical cost model -- and
            // produces the same numbers, which is what the
            // warm-vs-cold artifact diff checks.
            if (cfg.sweep == SweepMode::Cold || !lane.calibrated) {
                Testbed &tb = warmK2(cfg.sweep, fixtureKey, makeConfig);
                lane.cal = calibrate(tb);
                lane.calibrated = true;
            }
            for (std::uint64_t id = lo; id < hi; ++id)
                synthesizeDevice(*mix, lane.cal, cfg.seed, id,
                                 cfg.hours, lane.stats);
        });
    }
    runner.run();

    FleetResult res;
    res.cells = cells;
    bool haveCal = false;
    for (const Lane &lane : lanes) {
        res.stats.merge(lane.stats);
        if (lane.calibrated && !haveCal) {
            res.calibration = lane.cal;
            haveCal = true;
        }
    }

    // Render the report. Deliberately silent about --jobs and
    // --sweep: the artifact must diff clean across both.
    const FleetStats &fs = res.stats;
    std::uint64_t totalEpisodes = 0;
    for (std::size_t k = 0; k < kFleetKinds; ++k)
        totalEpisodes += fs.episodes[k];

    std::string text = sim::strPrintf(
        "fleet: mix=%s (%s)\n"
        "devices=%llu hours=%.3f seed=%llu device-hours=%.1f\n"
        "episodes=%llu (sensor %llu, push %llu, sync %llu) "
        "payload=%.1f MB\n"
        "fleet energy=%.3f J  mean device power=%.2f uW\n\n",
        mix->name, mix->summary,
        static_cast<unsigned long long>(cfg.devices), cfg.hours,
        static_cast<unsigned long long>(cfg.seed),
        static_cast<double>(cfg.devices) * cfg.hours,
        static_cast<unsigned long long>(totalEpisodes),
        static_cast<unsigned long long>(fs.episodes[0]),
        static_cast<unsigned long long>(fs.episodes[1]),
        static_cast<unsigned long long>(fs.episodes[2]),
        static_cast<double>(fs.bytes) / 1e6,
        fs.episodeEnergyUj.sum() / 1e6,
        fs.deviceEnergyUj.sum() /
            (static_cast<double>(cfg.devices) * cfg.hours * 3600.0));

    Table table({"metric", "count", "mean", "p50", "p90", "p99",
                 "p99.9", "max"});
    table.addRow(sketchRow("episode energy (uJ)", fs.episodeEnergyUj,
                           1));
    table.addRow(
        sketchRow("episode latency (us)", fs.episodeLatencyUs, 1));
    table.addRow(
        sketchRow("device energy (uJ)", fs.deviceEnergyUj, 0));
    for (std::size_t k = 0; k < kFleetKinds; ++k)
        table.addRow(sketchRow(
            std::string(fleetKindName(static_cast<FleetKind>(k))) +
                " episode energy (uJ)",
            fs.kindEnergyUj[k], 1));
    text += table.render();
    res.text = std::move(text);

    obs::NamedSketches named = {
        {"fleet.episode.energy_uj", &fs.episodeEnergyUj},
        {"fleet.episode.latency_us", &fs.episodeLatencyUs},
        {"fleet.device.energy_uj", &fs.deviceEnergyUj},
    };
    for (std::size_t k = 0; k < kFleetKinds; ++k)
        named.emplace_back(
            std::string("fleet.kind.") +
                fleetKindName(static_cast<FleetKind>(k)) +
                ".energy_uj",
            &fs.kindEnergyUj[k]);
    res.json = obs::sketchJson(named);
    return res;
}

} // namespace wl
} // namespace k2
