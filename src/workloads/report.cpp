#include "workloads/report.h"

#include <cstdio>

#include "sim/log.h"

namespace k2 {
namespace wl {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{}

void
Table::addRow(std::vector<std::string> cells)
{
    K2_ASSERT(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string out = "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += " " + row[c];
            out += std::string(widths[c] - row[c].size() + 1, ' ');
            out += "|";
        }
        return out + "\n";
    };

    std::string out = render_row(headers_);
    std::string sep = "|";
    for (const auto w : widths)
        sep += std::string(w + 2, '-') + "|";
    out += sep + "\n";
    for (const auto &row : rows_)
        out += render_row(row);
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
fmt(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
fmtBytes(std::uint64_t bytes)
{
    char buf[64];
    if (bytes >= (1ull << 20) && bytes % (1ull << 20) == 0)
        std::snprintf(buf, sizeof(buf), "%lluM",
                      static_cast<unsigned long long>(bytes >> 20));
    else if (bytes >= 1024 && bytes % 1024 == 0)
        std::snprintf(buf, sizeof(buf), "%lluK",
                      static_cast<unsigned long long>(bytes >> 10));
    else
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(bytes));
    return buf;
}

void
banner(const std::string &title)
{
    std::printf("\n==== %s ====\n\n", title.c_str());
}

} // namespace wl
} // namespace k2
