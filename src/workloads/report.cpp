#include "workloads/report.h"

#include <cmath>
#include <cstdio>

#include "obs/metrics.h"
#include "sim/log.h"

namespace k2 {
namespace wl {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{}

void
Table::addRow(std::vector<std::string> cells)
{
    K2_ASSERT(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string out = "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += " " + row[c];
            out += std::string(widths[c] - row[c].size() + 1, ' ');
            out += "|";
        }
        return out + "\n";
    };

    std::string out = render_row(headers_);
    std::string sep = "|";
    for (const auto w : widths)
        sep += std::string(w + 2, '-') + "|";
    out += sep + "\n";
    for (const auto &row : rows_)
        out += render_row(row);
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
fmt(double v, int decimals)
{
    if (std::isnan(v))
        return "-";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
fmtBytes(std::uint64_t bytes)
{
    char buf[64];
    if (bytes >= (1ull << 20) && bytes % (1ull << 20) == 0)
        std::snprintf(buf, sizeof(buf), "%lluM",
                      static_cast<unsigned long long>(bytes >> 20));
    else if (bytes >= 1024 && bytes % 1024 == 0)
        std::snprintf(buf, sizeof(buf), "%lluK",
                      static_cast<unsigned long long>(bytes >> 10));
    else
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(bytes));
    return buf;
}

void
banner(const std::string &title)
{
    std::printf("\n==== %s ====\n\n", title.c_str());
}

namespace {

/** Mean of an accumulator-kind metric, or NaN when it has no samples. */
double
metricMean(const obs::MetricsSnapshot &d, const std::string &name)
{
    const obs::MetricValue *v = d.find(name);
    if (!v || v->count == 0)
        return std::nan("");
    return v->mean();
}

std::uint64_t
metricCount(const obs::MetricsSnapshot &d, const std::string &name)
{
    const obs::MetricValue *v = d.find(name);
    return v ? v->count : 0;
}

} // namespace

std::string
episodeReport(const obs::MetricsSnapshot &delta)
{
    std::string out;

    // Table 5-style per-fault breakdown, one row per faulting kernel.
    if (delta.hasPrefix("os.dsm.")) {
        Table t({"kernel", "faults", "entry us", "protocol us", "comm us",
                 "service us", "exit us", "total us"});
        for (const char *k : {"main", "shadow"}) {
            const std::string p = std::string("os.dsm.") + k;
            t.addRow({k, std::to_string(metricCount(delta, p + ".faults")),
                      fmt(metricMean(delta, p + ".fault_entry_us")),
                      fmt(metricMean(delta, p + ".protocol_us")),
                      fmt(metricMean(delta, p + ".comm_us")),
                      fmt(metricMean(delta, p + ".service_us")),
                      fmt(metricMean(delta, p + ".exit_us")),
                      fmt(metricMean(delta, p + ".total_us"))});
        }
        out += "DSM fault breakdown (per-fault means):\n" + t.render();
    }

    // Per-rail energy split.
    double total_uj = 0.0;
    constexpr const char *kRailPrefix = "soc.power.";
    constexpr const char *kEnergySuffix = ".energy_uj";
    auto is_energy = [&](const std::string &name) {
        return name.rfind(kRailPrefix, 0) == 0 &&
               name.size() > std::string(kEnergySuffix).size() &&
               name.compare(name.size() -
                                std::string(kEnergySuffix).size(),
                            std::string::npos, kEnergySuffix) == 0;
    };
    for (const auto &[name, v] : delta.values()) {
        if (is_energy(name))
            total_uj += v.value;
    }
    if (total_uj > 0.0) {
        Table t({"rail", "energy uJ", "share %"});
        for (const auto &[name, v] : delta.values()) {
            if (!is_energy(name))
                continue;
            const std::string rail = name.substr(
                std::string(kRailPrefix).size(),
                name.size() - std::string(kRailPrefix).size() -
                    std::string(kEnergySuffix).size());
            t.addRow({rail, fmt(v.value),
                      fmt(100.0 * v.value / total_uj)});
        }
        if (!out.empty())
            out += "\n";
        out += "Energy by rail:\n" + t.render();
    }

    // Service activity, one row per driver that did anything.
    {
        Table t({"service", "metric", "delta"});
        std::size_t rows = 0;
        for (const auto &[name, v] : delta.values()) {
            if (name.rfind("svc.", 0) != 0)
                continue;
            if (v.kind == obs::MetricValue::Kind::Counter && v.count) {
                t.addRow({name.substr(4, name.find('.', 4) - 4), name,
                          std::to_string(v.count)});
                ++rows;
            }
        }
        if (rows) {
            if (!out.empty())
                out += "\n";
            out += "Service activity:\n" + t.render();
        }
    }

    // Fault-injection and recovery activity: only counters that moved,
    // so a zero-fault run's report is unchanged (the metrics don't
    // even exist unless the fault plane is armed).
    {
        Table t({"counter", "delta"});
        std::size_t rows = 0;
        for (const auto &[name, v] : delta.values()) {
            if (name.rfind("fault.injected.", 0) != 0 &&
                name.rfind("os.recovery.", 0) != 0 &&
                name.rfind("os.replica.", 0) != 0 &&
                name.rfind("os.ndsm.", 0) != 0)
                continue;
            if (v.kind == obs::MetricValue::Kind::Counter && v.count) {
                t.addRow({name, std::to_string(v.count)});
                ++rows;
            }
        }
        if (rows) {
            if (!out.empty())
                out += "\n";
            out += "Recovery activity:\n" + t.render();
        }
    }

    return out;
}

} // namespace wl
} // namespace k2
