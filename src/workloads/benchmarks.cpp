#include "workloads/benchmarks.h"

#include <algorithm>
#include <string>
#include <vector>

#include "sim/log.h"

namespace k2 {
namespace wl {

Workload
dmaCopy(svc::DmaDriver &dma, std::uint64_t batch, std::uint64_t total)
{
    return [&dma, batch, total](
               kern::Thread &t) -> sim::Task<std::uint64_t> {
        std::uint64_t moved = 0;
        while (moved < total) {
            const std::uint64_t n = std::min(batch, total - moved);
            co_await dma.transfer(t, n);
            moved += n;
        }
        co_return moved;
    };
}

Workload
ext2Sync(svc::Ext2Fs &fs, std::uint64_t file_bytes, int num_files,
         std::uint64_t chunk_bytes)
{
    return [&fs, file_bytes, num_files, chunk_bytes](
               kern::Thread &t) -> sim::Task<std::uint64_t> {
        std::vector<std::uint8_t> chunk(chunk_bytes, 0xA5);
        std::uint64_t written = 0;
        for (int i = 0; i < num_files; ++i) {
            const std::string path =
                "/sync" + std::to_string(i) + ".dat";
            const std::int64_t fd = co_await fs.create(t, path);
            K2_ASSERT(fd >= 0);
            std::uint64_t remaining = file_bytes;
            while (remaining > 0) {
                const std::uint64_t n =
                    std::min<std::uint64_t>(chunk_bytes, remaining);
                const std::int64_t got = co_await fs.write(
                    t, static_cast<int>(fd),
                    std::span<const std::uint8_t>(chunk.data(), n));
                K2_ASSERT(got == static_cast<std::int64_t>(n));
                remaining -= n;
                written += n;
            }
            co_await fs.close(t, static_cast<int>(fd));
        }
        // Clean up so repeated runs see the same filesystem state.
        for (int i = 0; i < num_files; ++i) {
            const std::string path =
                "/sync" + std::to_string(i) + ".dat";
            co_await fs.unlink(t, path);
        }
        co_return written;
    };
}

Workload
udpLoopback(svc::UdpStack &udp, std::uint64_t batch, std::uint64_t total,
            std::uint64_t datagram_bytes)
{
    return [&udp, batch, total, datagram_bytes](
               kern::Thread &t) -> sim::Task<std::uint64_t> {
        std::uint64_t sent = 0;
        while (sent < total) {
            // (Re)create the socket pair for this batch.
            const std::int64_t tx = co_await udp.socket(t);
            const std::int64_t rx = co_await udp.socket(t);
            K2_ASSERT(tx >= 0 && rx >= 0);
            const std::int64_t rx_port =
                co_await udp.bind(t, static_cast<int>(rx), 0);
            K2_ASSERT(rx_port > 0);

            std::uint64_t in_batch = 0;
            const std::uint64_t this_batch =
                std::min(batch, total - sent);
            while (in_batch < this_batch) {
                const std::uint64_t n = std::min<std::uint64_t>(
                    datagram_bytes, this_batch - in_batch);
                const std::int64_t s = co_await udp.sendTo(
                    t, static_cast<int>(tx),
                    static_cast<std::uint16_t>(rx_port), n);
                K2_ASSERT(s == static_cast<std::int64_t>(n));
                const std::int64_t r =
                    co_await udp.recvFrom(t, static_cast<int>(rx));
                K2_ASSERT(r == static_cast<std::int64_t>(n));
                in_batch += n;
            }
            sent += in_batch;
            co_await udp.close(t, static_cast<int>(tx));
            co_await udp.close(t, static_cast<int>(rx));
        }
        co_return sent;
    };
}

Workload
emailSync(svc::UdpStack &udp, svc::Ext2Fs &fs, std::uint64_t fetch_bytes,
          int seq)
{
    return [&udp, &fs, fetch_bytes, seq](
               kern::Thread &t) -> sim::Task<std::uint64_t> {
        // Fetch the message over the network path.
        const std::int64_t tx = co_await udp.socket(t);
        const std::int64_t rx = co_await udp.socket(t);
        K2_ASSERT(tx >= 0 && rx >= 0);
        const std::int64_t port =
            co_await udp.bind(t, static_cast<int>(rx), 0);
        std::uint64_t fetched = 0;
        while (fetched < fetch_bytes) {
            const std::uint64_t n =
                std::min<std::uint64_t>(8192, fetch_bytes - fetched);
            co_await udp.sendTo(t, static_cast<int>(tx),
                                static_cast<std::uint16_t>(port), n);
            const std::int64_t r =
                co_await udp.recvFrom(t, static_cast<int>(rx));
            fetched += static_cast<std::uint64_t>(r);
        }
        co_await udp.close(t, static_cast<int>(tx));
        co_await udp.close(t, static_cast<int>(rx));

        // Persist to storage.
        const std::string path = "/mail" + std::to_string(seq) + ".eml";
        const std::int64_t fd = co_await fs.create(t, path);
        K2_ASSERT(fd >= 0);
        std::vector<std::uint8_t> chunk(
            std::min<std::uint64_t>(fetch_bytes, 32768), 0x42);
        std::uint64_t stored = 0;
        while (stored < fetch_bytes) {
            const std::uint64_t n = std::min<std::uint64_t>(
                chunk.size(), fetch_bytes - stored);
            co_await fs.write(
                t, static_cast<int>(fd),
                std::span<const std::uint8_t>(chunk.data(), n));
            stored += n;
        }
        co_await fs.close(t, static_cast<int>(fd));
        co_await fs.unlink(t, path);
        co_return fetched + stored;
    };
}

} // namespace wl
} // namespace k2
