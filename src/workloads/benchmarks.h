/**
 * @file
 * The paper's three OS benchmarks (§9.2), expressed as Workloads:
 *
 *  - DMA: repeated memory-to-memory DMA transfers, BatchSize bytes per
 *    transfer, TotalSize bytes per run (Fig. 6a).
 *  - ext2: a cloud-sync-like task that creates, writes, and closes
 *    eight files of a given size on a ramdisk (Fig. 6b).
 *  - UDP loopback: write to one socket / read from the other for
 *    TotalSize bytes, recreating the socket pair every BatchSize
 *    bytes (Fig. 6c).
 */

#ifndef K2_WORKLOADS_BENCHMARKS_H
#define K2_WORKLOADS_BENCHMARKS_H

#include <cstdint>

#include "svc/dma_driver.h"
#include "svc/ext2.h"
#include "svc/udp.h"
#include "workloads/episode.h"

namespace k2 {
namespace wl {

/** Fig. 6a: DMA transfers of @p batch bytes until @p total moved. */
Workload dmaCopy(svc::DmaDriver &dma, std::uint64_t batch,
                 std::uint64_t total);

/**
 * Fig. 6b: create/write/close @p num_files files of @p file_bytes each
 * (then unlink them so runs are repeatable). Writes go in
 * @p chunk_bytes application buffers.
 */
Workload ext2Sync(svc::Ext2Fs &fs, std::uint64_t file_bytes,
                  int num_files = 8, std::uint64_t chunk_bytes = 32768);

/**
 * Fig. 6c: UDP loopback; datagrams of up to @p datagram_bytes, socket
 * pair recreated every @p batch bytes, @p total bytes overall.
 */
Workload udpLoopback(svc::UdpStack &udp, std::uint64_t batch,
                     std::uint64_t total,
                     std::uint64_t datagram_bytes = 8192);

/**
 * A background email-sync episode (for the standby estimate): fetch
 * @p fetch_bytes over UDP loopback and persist them to the fs.
 */
Workload emailSync(svc::UdpStack &udp, svc::Ext2Fs &fs,
                   std::uint64_t fetch_bytes, int seq);

} // namespace wl
} // namespace k2

#endif // K2_WORKLOADS_BENCHMARKS_H
