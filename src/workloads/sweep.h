/**
 * @file
 * Parallel sweep harness: shard independent simulation cells across
 * host threads with byte-identical results.
 *
 * Every experiment in the evaluation is a sweep over independent
 * (system, workload config, seed) cells, each of which builds its own
 * sim::Engine + SystemImage, runs to quiescence, and produces a row
 * of a table / a metrics snapshot / an energy figure. Cells share no
 * mutable state (see DESIGN.md §8 for the isolation rules), so the
 * sweep is data-parallel over isolated simulator instances.
 *
 * SweepRunner executes submitted cells on a small work-stealing pool
 * of host threads and guarantees that every observable artifact is
 * byte-identical to serial execution, at any thread count:
 *
 *  - Results: a cell communicates results only by writing state the
 *    caller reads after run() (typically a slot in a pre-sized
 *    vector, indexed by submission order). The runner never reorders
 *    or merges results itself.
 *  - Logs: each cell runs under a sim::ScopedLogConfig that captures
 *    the warn()/inform()/trace() text the cell emits; the runner
 *    replays the captured streams to stderr/stdout in submission
 *    order after all cells finish. Concurrent cells can therefore
 *    never interleave output.
 *  - Errors: a FatalError (or any exception) thrown inside a cell is
 *    rethrown on the caller's thread, lowest submission index first,
 *    after the pool has drained.
 *
 * With jobs() == 1 the calling thread executes the cells in
 * submission order with no pool at all -- exactly the serial
 * behaviour the parallel runs are required to reproduce.
 */

#ifndef K2_WORKLOADS_SWEEP_H
#define K2_WORKLOADS_SWEEP_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/log.h"

namespace k2 {

namespace os {
namespace coherence {
enum class ProtocolKind : std::uint8_t;
}
} // namespace os

namespace wl {

class SweepRunner
{
  public:
    /** A sweep cell: owns everything it touches (engine, system,
     *  services), writes results only to caller-provided slots. */
    using Cell = std::function<void()>;

    /**
     * A streaming-reducer cell: like Cell, but handed the index of
     * the reduction lane it runs on (see lanes()). Cells on the same
     * lane never run concurrently, so a lane cell may accumulate into
     * a caller-owned per-lane partial (a QuantileSketch, a counter
     * set, ...) without synchronisation. After run(), the caller
     * folds the lane partials together -- O(lanes) reduction state
     * instead of O(cells) result slots. Byte-identical output at any
     * --jobs=N additionally requires the fold operation to be
     * associative and commutative (sim::QuantileSketch::merge is,
     * exactly); which lane a given cell lands on is scheduling-
     * dependent.
     */
    using LaneCell = std::function<void(std::size_t lane)>;

    /**
     * @param jobs Worker thread count; 0 selects the host's hardware
     *        concurrency. 1 runs cells inline on the calling thread.
     */
    explicit SweepRunner(unsigned jobs = 0);
    ~SweepRunner();

    /** Worker threads run() will use. */
    unsigned jobs() const { return jobs_; }

    /**
     * Number of reduction lanes (== jobs()): worker w executes its
     * cells with lane index w, the serial path uses lane 0. Stable
     * for the runner's lifetime, so per-lane partials can be sized
     * before submission.
     */
    std::size_t lanes() const { return jobs_; }

    /**
     * Queue a cell. Cells are independent; they may run on any worker
     * in any order, but captured logs and error reporting follow
     * submission order.
     *
     * @return The cell's submission index.
     */
    std::size_t submit(Cell cell);

    /** Queue a streaming-reducer cell (see LaneCell). */
    std::size_t submitLane(LaneCell cell);

    /**
     * Run all submitted cells to completion and replay their captured
     * log output in submission order (cell stdout text to stdout,
     * stderr text to stderr). After every cell has finished, the
     * first failed cell's exception (by submission order) is rethrown
     * wrapped with its cell index; when several cells failed, the
     * count of additionally suppressed failures is logged as a
     * warning first. FatalError stays FatalError; other exceptions
     * rethrow as std::runtime_error carrying the original message.
     * Afterwards the runner is empty and may be reused.
     */
    void run();

    /** Number of cells currently queued. */
    std::size_t size() const;

    /** The log verbosity cells run under (defaults to the process
     *  default at construction). */
    void setCellLogLevel(sim::LogLevel level) { cellLevel_ = level; }

  private:
    struct CellState;

    void runCell(CellState &cell, std::size_t lane);

    unsigned jobs_;
    sim::LogLevel cellLevel_;
    std::vector<CellState> cells_;
};

/**
 * Strip every `--NAME=VALUE` occurrence of one flag from argv, with
 * conventional last-wins semantics.
 *
 * All sweep flag parsers (and any binary-specific ones) are built on
 * this helper so repeated flags behave uniformly: `--jobs=4 --jobs=8`
 * means 8, and no occurrence is left behind in argv for downstream
 * argument handling to trip on.
 *
 * @param argc In/out argument count; every occurrence is removed.
 * @param argv In/out argument vector (only pointers are shifted; the
 *        argument strings themselves are untouched).
 * @param flag The flag prefix including '=', e.g. "--jobs=".
 * @param value Out: the value of the last occurrence; untouched when
 *        the flag is absent.
 * @return True when at least one occurrence was found.
 */
bool consumeFlag(int &argc, char **argv, const char *flag,
                 std::string &value);

/**
 * Parse and strip a `--jobs=N` flag from argv (last occurrence wins).
 *
 * @param argc In/out argument count; the flag is removed when found.
 * @param argv In/out argument vector.
 * @param fallback Returned when no flag is present: 0 selects
 *        hardware concurrency (the default for sweep binaries).
 * @return The requested job count.
 * @throws sim::FatalError on a malformed value.
 */
unsigned parseJobsFlag(int &argc, char **argv, unsigned fallback = 0);

/**
 * Parse and strip a `--faults=SPEC` flag from argv (last occurrence
 * wins).
 *
 * SPEC is the fault::FaultPlan::parse() syntax, e.g.
 * "mailbox.drop:p=1e-3,dma.err:at=2s". The spec string itself is
 * returned (empty when the flag is absent) so each sweep cell can
 * build its own FaultPlan; validation happens at plan parse time.
 */
std::string parseFaultsFlag(int &argc, char **argv);

/**
 * Parse and strip an unsigned integer flag, e.g. "--devices=" (last
 * occurrence wins). The value must lie in [@p lo, @p hi].
 * @throws sim::FatalError on a malformed or out-of-range value.
 */
std::uint64_t parseUintFlag(int &argc, char **argv, const char *flag,
                            std::uint64_t fallback, std::uint64_t lo,
                            std::uint64_t hi);

/**
 * Parse and strip a positive floating-point flag, e.g. "--hours="
 * (last occurrence wins). The value must lie in (0, @p hi].
 * @throws sim::FatalError on a malformed or out-of-range value.
 */
double parseFloatFlag(int &argc, char **argv, const char *flag,
                      double fallback, double hi);

/**
 * Parse and strip a non-empty string flag, e.g. "--mix=" (last
 * occurrence wins).
 */
std::string parseStringFlag(int &argc, char **argv, const char *flag,
                            const std::string &fallback);

/**
 * Parse and strip a `--dsm=PROTO` flag (last occurrence wins),
 * selecting the DSM coherence protocol (see
 * os::coherence::ProtocolKind; names as printed by protocolNames()).
 *
 * @param out Set to the parsed protocol when the flag is present;
 *        untouched otherwise, so callers initialise it with their
 *        default.
 * @return True when the flag was present.
 * @throws sim::FatalError on an unknown name, pinpointing the typo's
 *         position within the flag text (the --faults= convention).
 */
bool parseDsmFlag(int &argc, char **argv,
                  os::coherence::ProtocolKind &out);

} // namespace wl
} // namespace k2

#endif // K2_WORKLOADS_SWEEP_H
