/**
 * @file
 * Parallel sweep harness: shard independent simulation cells across
 * host threads with byte-identical results.
 *
 * Every experiment in the evaluation is a sweep over independent
 * (system, workload config, seed) cells, each of which builds its own
 * sim::Engine + SystemImage, runs to quiescence, and produces a row
 * of a table / a metrics snapshot / an energy figure. Cells share no
 * mutable state (see DESIGN.md §8 for the isolation rules), so the
 * sweep is data-parallel over isolated simulator instances.
 *
 * SweepRunner executes submitted cells on a small work-stealing pool
 * of host threads and guarantees that every observable artifact is
 * byte-identical to serial execution, at any thread count:
 *
 *  - Results: a cell communicates results only by writing state the
 *    caller reads after run() (typically a slot in a pre-sized
 *    vector, indexed by submission order). The runner never reorders
 *    or merges results itself.
 *  - Logs: each cell runs under a sim::ScopedLogConfig that captures
 *    the warn()/inform()/trace() text the cell emits; the runner
 *    replays the captured streams to stderr/stdout in submission
 *    order after all cells finish. Concurrent cells can therefore
 *    never interleave output.
 *  - Errors: a FatalError (or any exception) thrown inside a cell is
 *    rethrown on the caller's thread, lowest submission index first,
 *    after the pool has drained.
 *
 * With jobs() == 1 the calling thread executes the cells in
 * submission order with no pool at all -- exactly the serial
 * behaviour the parallel runs are required to reproduce.
 */

#ifndef K2_WORKLOADS_SWEEP_H
#define K2_WORKLOADS_SWEEP_H

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/log.h"

namespace k2 {
namespace wl {

class SweepRunner
{
  public:
    /** A sweep cell: owns everything it touches (engine, system,
     *  services), writes results only to caller-provided slots. */
    using Cell = std::function<void()>;

    /**
     * @param jobs Worker thread count; 0 selects the host's hardware
     *        concurrency. 1 runs cells inline on the calling thread.
     */
    explicit SweepRunner(unsigned jobs = 0);
    ~SweepRunner();

    /** Worker threads run() will use. */
    unsigned jobs() const { return jobs_; }

    /**
     * Queue a cell. Cells are independent; they may run on any worker
     * in any order, but captured logs and error reporting follow
     * submission order.
     *
     * @return The cell's submission index.
     */
    std::size_t submit(Cell cell);

    /**
     * Run all submitted cells to completion and replay their captured
     * log output in submission order (cell stdout text to stdout,
     * stderr text to stderr). Rethrows the first failed cell's
     * exception (by submission order) after every cell has finished.
     * Afterwards the runner is empty and may be reused.
     */
    void run();

    /** Number of cells currently queued. */
    std::size_t size() const;

    /** The log verbosity cells run under (defaults to the process
     *  default at construction). */
    void setCellLogLevel(sim::LogLevel level) { cellLevel_ = level; }

  private:
    struct CellState;

    void runCell(CellState &cell);

    unsigned jobs_;
    sim::LogLevel cellLevel_;
    std::vector<CellState> cells_;
};

/**
 * Parse and strip a leading `--jobs=N` flag from argv.
 *
 * @param argc In/out argument count; the flag is removed when found.
 * @param argv In/out argument vector.
 * @param fallback Returned when no flag is present: 0 selects
 *        hardware concurrency (the default for sweep binaries).
 * @return The requested job count.
 * @throws sim::FatalError on a malformed value.
 */
unsigned parseJobsFlag(int &argc, char **argv, unsigned fallback = 0);

/**
 * Parse and strip a leading `--faults=SPEC` flag from argv.
 *
 * SPEC is the fault::FaultPlan::parse() syntax, e.g.
 * "mailbox.drop:p=1e-3,dma.err:at=2s". The spec string itself is
 * returned (empty when the flag is absent) so each sweep cell can
 * build its own FaultPlan; validation happens at plan parse time.
 */
std::string parseFaultsFlag(int &argc, char **argv);

} // namespace wl
} // namespace k2

#endif // K2_WORKLOADS_SWEEP_H
