/**
 * @file
 * The per-kernel CPU scheduler.
 *
 * One Scheduler multiplexes a kernel's threads onto the cores of its
 * coherence domain. Each core runs a core loop: pick the next ready
 * thread, charge the context-switch cost (waking the core if it was
 * power-gated), dispatch the thread until it parks, and go idle when
 * the runqueue drains -- letting the core's inactive timer run down.
 *
 * Two hook points let the K2 layer implement NightWatch scheduling
 * (§8) without changing the scheduler's mechanism or policy, mirroring
 * how the paper leaves the Linux scheduler untouched:
 *  - pre/post switch hooks around each context switch (the SuspendNW
 *    message overlap);
 *  - a process-blocked hook fired when the last Normal thread of a
 *    process leaves the Ready/Running states (the ResumeNW trigger).
 */

#ifndef K2_KERN_SCHED_H
#define K2_KERN_SCHED_H

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/engine.h"
#include "sim/stats.h"
#include "sim/sync.h"
#include "soc/core.h"
#include "kern/thread.h"

namespace k2 {
namespace kern {

class Scheduler
{
  public:
    /** Awaited around a context switch to the next thread, on the
     *  switching core. */
    using SwitchHook = std::function<sim::Task<void>(Thread &, soc::Core &)>;

    /** Fired when a process's last Normal thread blocks or exits. */
    using ProcessHook = std::function<void(Process &)>;

    Scheduler(sim::Engine &eng, std::vector<soc::Core *> cores,
              const soc::PlatformCosts &costs,
              sim::Duration quantum = sim::msec(1));

    /** Start the per-core loops. Call once at kernel boot. */
    void start();

    /** Enqueue a newly created or readied thread. */
    void makeReady(Thread &t);

    /** Gate / ungate a thread (NightWatch suspension, §8). */
    void setSuspended(Thread &t, bool suspended);

    /** True if @p t should be preempted at the next safe point. */
    bool shouldPreempt(const Thread &t) const;

    /** Scheduling quantum. */
    sim::Duration quantum() const { return quantum_; }

    /** Quantum expressed in instructions for @p core. */
    std::uint64_t quantumInstr(const soc::Core &core) const;

    void setPreSwitchHook(SwitchHook h) { preSwitch_ = std::move(h); }
    void setPostSwitchHook(SwitchHook h) { postSwitch_ = std::move(h); }
    void setProcessBlockedHook(ProcessHook h)
    {
        processBlocked_ = std::move(h);
    }

    /** @name Statistics. @{ */
    std::uint64_t contextSwitches() const { return switches_.value(); }
    std::size_t runqueueDepth() const { return runq_.size(); }
    /** @} */

    /** Number of Ready+Running Normal threads of @p proc here. */
    int runnableNormal(const Process &proc) const;

    /**
     * Capture/restore scheduler state at quiescence (empty runqueue,
     * every core loop parked). @p threads is the owning kernel's
     * thread table, already restored: the gated list is rebuilt from
     * tids and the per-process runnable counts are recomputed from
     * thread states.
     */
    void snapState(snap::Io &io,
                   const std::vector<std::unique_ptr<Thread>> &threads);

  private:
    friend class Thread;

    sim::Task<void> coreLoop(soc::Core &core);
    Thread *pickNext();

    /** Thread->scheduler notifications. */
    void noteBlockedOrDone(Thread &t);

    void bumpRunnable(Thread &t, int delta);

    /**
     * Wake one parked core to serve the runqueue, preferring a core
     * that is merely idle (clocked) over a power-gated one, and the
     * most recently used among those -- mirroring how wake_idle_cpu
     * avoids pulling gated cores out of deep states for a single
     * runnable thread.
     */
    void kickOneCore();

    sim::Engine &engine_;
    std::vector<soc::Core *> cores_;
    const soc::PlatformCosts &costs_;
    sim::Duration quantum_;
    std::deque<Thread *> runq_;
    std::vector<Thread *> gated_; //!< Suspended but otherwise ready.
    struct ParkedCore
    {
        soc::Core *core;
        std::unique_ptr<sim::Event> wake;
        bool parked = false;
        sim::Time lastRan = 0;
        sim::TrackId track = 0; //!< Span track for dispatch slices.
    };
    std::vector<ParkedCore> parked_;
    SwitchHook preSwitch_;
    SwitchHook postSwitch_;
    ProcessHook processBlocked_;
    std::unordered_map<const Process *, int> runnableNormal_;
    sim::Counter switches_;
    bool started_ = false;
};

} // namespace kern
} // namespace k2

#endif // K2_KERN_SCHED_H
