/**
 * @file
 * Simulated kernel threads and processes.
 *
 * A Thread's body is a coroutine that runs *on* a simulated core under
 * a Scheduler. Control transfers between the scheduler's per-core loop
 * and the thread body use symmetric coroutine handoff: the core loop
 * `co_await t->dispatch()` resumes the thread where it parked; blocking
 * operations inside the body `co_await park()` to hand the core back.
 *
 * Inside a body, all interaction with the platform goes through the
 * Thread's context methods (exec, execTime, sleep, wait, yield), which
 * charge time/energy to the current core and cooperate with the
 * scheduler for preemption. Thread code must NOT await raw sim
 * primitives directly -- that would block the simulated core without
 * the scheduler knowing.
 */

#ifndef K2_KERN_THREAD_H
#define K2_KERN_THREAD_H

#include <coroutine>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "kern/types.h"

namespace k2 {
namespace soc {
class Core;
}

namespace kern {

class Kernel;
class Scheduler;
class Thread;

/** A process: a container of threads sharing one address space. */
class Process
{
  public:
    Process(Pid pid, std::string name)
        : pid_(pid), name_(std::move(name))
    {}

    Pid pid() const { return pid_; }
    const std::string &name() const { return name_; }

    const std::vector<Thread *> &threads() const { return threads_; }
    void addThread(Thread *t) { threads_.push_back(t); }

    /** Number of NightWatch threads in this process. */
    std::size_t numNightWatch() const;

    /**
     * Prune the thread list back to the captured prefix (threads
     * created after the capture point must already be Done and are
     * dropped; the prefix is verified by tid).
     */
    void snapState(snap::Io &io);

  private:
    Pid pid_;
    std::string name_;
    std::vector<Thread *> threads_;
};

class Thread
{
  public:
    enum class State { Ready, Running, Blocked, Done };

    /** The thread's simulated code. */
    using Body = std::function<sim::Task<void>(Thread &)>;

    Thread(Kernel &kernel, Process *proc, Tid tid, std::string name,
           ThreadKind kind, Body body);

    Thread(const Thread &) = delete;
    Thread &operator=(const Thread &) = delete;

    /** @name Identity. @{ */
    Tid tid() const { return tid_; }
    const std::string &name() const { return name_; }
    Process *process() const { return process_; }
    ThreadKind kind() const { return kind_; }
    bool isNightWatch() const { return kind_ == ThreadKind::NightWatch; }
    Kernel &kernel() { return kernel_; }
    /** @} */

    State state() const { return state_; }
    bool done() const { return state_ == State::Done; }

    /** Latched event set when the body finishes. */
    sim::Event &doneEvent() { return doneEvent_; }

    /** The core currently (or last) running this thread. */
    soc::Core &core();

    /** @name Context API (call only from inside the body). @{ */

    /** Execute @p instructions of work, with preemption at quantum
     *  boundaries. */
    sim::Task<void> exec(std::uint64_t instructions);

    /** Execute fixed-duration active work (device register IO). */
    sim::Task<void> execTime(sim::Duration d);

    /** Block for a simulated duration without occupying the core. */
    sim::Task<void> sleep(sim::Duration d);

    /** Block until @p ev is set/pulsed. */
    sim::Task<void> wait(sim::Event &ev);

    /** Offer the core to another ready thread. */
    sim::Task<void> yield();

    /** @} */

    /** @name Scheduler interface. @{ */

    /** Awaitable used by the core loop: runs the thread until it
     *  parks. */
    auto
    dispatch()
    {
        struct Awaiter
        {
            Thread &t;

            bool await_ready() const { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> h)
            {
                t.schedHandle_ = h;
                return std::exchange(t.parked_, nullptr);
            }

            void await_resume() const {}
        };
        return Awaiter{*this};
    }

    bool suspended() const { return suspended_; }
    void setSuspended(bool s) { suspended_ = s; }

    /** @name Critical sections (held cross-domain locks).
     *
     * A thread inside a critical section must not be suspended by
     * NightWatch gating: it may hold a hardware spinlock, and parking
     * it parks every waiter for the whole gated window (or forever,
     * if the gate only lifts once the waiters run). Gating defers the
     * suspension instead; it is applied when the section exits.
     * @{ */
    void enterCritical() { ++critical_; }
    void exitCritical();
    bool inCritical() const { return critical_ > 0; }
    /** Ask to suspend as soon as the critical section exits. */
    void deferSuspend() { suspendPending_ = true; }
    void clearDeferredSuspend() { suspendPending_ = false; }
    /** @} */

    /** True while a preemption/suspension check should park. */
    bool shouldPark() const;

    /** Destroy the parked coroutine frame of a Done thread. */
    void reap();

    /** @} */

    /**
     * Capture/restore the semantic thread state. The coroutine frame
     * itself is structural: a thread alive at capture is parked at the
     * same await site at every quiescent point, so only its state
     * flags, timestamps, and core binding are rewritten.
     */
    void snapState(snap::Io &io);

  private:
    friend class Scheduler;

    /** Awaitable used inside the body: hand the core back. */
    auto
    park()
    {
        struct Awaiter
        {
            Thread &t;

            bool await_ready() const { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> h)
            {
                t.parked_ = h;
                auto sched = std::exchange(t.schedHandle_, nullptr);
                return sched ? sched : std::noop_coroutine();
            }

            void await_resume() const {}
        };
        return Awaiter{*this};
    }

    /** Top-level coroutine that wraps the body. */
    sim::Task<void> run();

    /** Park with the given next state; scheduler requeues if Ready. */
    sim::Task<void> parkAs(State next);

    /** Detached helper: readies the thread when @p ev fires. */
    sim::Task<void> watchAndReady(sim::Event &ev);

    sim::Engine &engine() const;
    Scheduler &scheduler() const;

    Kernel &kernel_;
    Process *process_;
    Tid tid_;
    std::string name_;
    ThreadKind kind_;
    Body body_;
    State state_ = State::Ready;
    bool suspended_ = false;
    int critical_ = 0;            //!< Held critical-section depth.
    bool suspendPending_ = false; //!< Gating wants us once critical_==0.
    bool queued_ = false;   //!< In the runqueue or gated list.
    bool everRan_ = false;  //!< Has been made ready at least once.
    sim::Time dispatchedAt_ = 0;
    soc::Core *core_ = nullptr;
    std::coroutine_handle<> parked_;
    std::coroutine_handle<> schedHandle_;
    sim::Event doneEvent_;
};

} // namespace kern
} // namespace k2

#endif // K2_KERN_THREAD_H
