#include "kern/layout.h"

#include "sim/log.h"

namespace k2 {
namespace kern {

namespace {

/** Pages per 16 MB page block (with 4 KB pages). */
constexpr std::uint64_t kBlockPages = 4096;

std::uint64_t
roundUpToBlock(std::uint64_t pages)
{
    return (pages + kBlockPages - 1) / kBlockPages * kBlockPages;
}

} // namespace

AddressSpaceLayout::AddressSpaceLayout(
    std::size_t page_bytes, std::uint64_t total_pages,
    std::vector<std::pair<std::string, std::uint64_t>> locals)
    : pageBytes_(page_bytes), totalPages_(total_pages)
{
    Pfn next = 0;
    for (auto &[owner, pages] : locals) {
        const std::uint64_t rounded = roundUpToBlock(pages);
        locals_.push_back(Region{owner, PageRange{next, rounded}});
        next += rounded;
    }
    if (next >= total_pages)
        K2_FATAL("local regions (%llu pages) exhaust physical memory "
                 "(%llu pages)",
                 static_cast<unsigned long long>(next),
                 static_cast<unsigned long long>(total_pages));
    global_ = Region{"global", PageRange{next, total_pages - next}};
}

const AddressSpaceLayout::Region &
AddressSpaceLayout::localOf(const std::string &owner) const
{
    for (const auto &r : locals_) {
        if (r.owner == owner)
            return r;
    }
    K2_FATAL("no local region for kernel '%s'", owner.c_str());
}

} // namespace kern
} // namespace k2
