#include "kern/sched.h"

#include <algorithm>

#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace kern {

Scheduler::Scheduler(sim::Engine &eng, std::vector<soc::Core *> cores,
                     const soc::PlatformCosts &costs, sim::Duration quantum)
    : engine_(eng), cores_(std::move(cores)), costs_(costs),
      quantum_(quantum)
{
    K2_ASSERT(!cores_.empty());
    for (soc::Core *c : cores_) {
        ParkedCore pc;
        pc.core = c;
        pc.wake = std::make_unique<sim::Event>(eng);
        pc.track = engine_.addTrack(sim::strPrintf(
            "kern.domain%u.core%u.sched", c->domain(), c->id()));
        parked_.push_back(std::move(pc));
    }
}

void
Scheduler::kickOneCore()
{
    if (runq_.empty())
        return;
    ParkedCore *best = nullptr;
    for (auto &pc : parked_) {
        if (!pc.parked)
            continue;
        if (!best) {
            best = &pc;
            continue;
        }
        const bool pc_gated = pc.core->isInactive();
        const bool best_gated = best->core->isInactive();
        if (pc_gated != best_gated) {
            if (best_gated)
                best = &pc;
        } else if (pc.lastRan > best->lastRan) {
            best = &pc;
        }
    }
    if (best) {
        best->parked = false;
        best->wake->pulse();
    }
}

void
Scheduler::start()
{
    K2_ASSERT(!started_);
    started_ = true;
    for (soc::Core *c : cores_)
        engine_.spawn(coreLoop(*c));
}

std::uint64_t
Scheduler::quantumInstr(const soc::Core &core) const
{
    const double instr = sim::toSec(quantum_) *
                         static_cast<double>(core.hz()) *
                         core.spec().instrPerCycle;
    return static_cast<std::uint64_t>(instr);
}

bool
Scheduler::shouldPreempt(const Thread &t) const
{
    (void)t;
    return !runq_.empty();
}

void
Scheduler::bumpRunnable(Thread &t, int delta)
{
    if (t.kind() != ThreadKind::Normal || !t.process())
        return;
    int &count = runnableNormal_[t.process()];
    count += delta;
    K2_ASSERT(count >= 0);
    if (count == 0 && processBlocked_)
        processBlocked_(*t.process());
}

int
Scheduler::runnableNormal(const Process &proc) const
{
    auto it = runnableNormal_.find(&proc);
    return it == runnableNormal_.end() ? 0 : it->second;
}

void
Scheduler::makeReady(Thread &t)
{
    if (t.queued_ || t.state() == Thread::State::Done)
        return;
    K2_ASSERT(t.state() != Thread::State::Running);
    const bool fresh = !t.everRan_;
    t.everRan_ = true;
    if (t.state() == Thread::State::Blocked || fresh) {
        t.state_ = Thread::State::Ready;
        bumpRunnable(t, +1);
    }
    t.queued_ = true;
    if (t.suspended()) {
        gated_.push_back(&t);
    } else {
        runq_.push_back(&t);
        kickOneCore();
    }
}

void
Scheduler::setSuspended(Thread &t, bool suspended)
{
    if (t.suspended() == suspended)
        return;
    t.setSuspended(suspended);
    if (suspended) {
        // If queued, move it out of the runqueue lazily: pickNext()
        // skips suspended threads into gated_. Nothing to do here.
        return;
    }
    auto it = std::find(gated_.begin(), gated_.end(), &t);
    if (it != gated_.end()) {
        gated_.erase(it);
        runq_.push_back(&t);
        kickOneCore();
    }
}

Thread *
Scheduler::pickNext()
{
    while (!runq_.empty()) {
        Thread *t = runq_.front();
        runq_.pop_front();
        if (t->suspended()) {
            gated_.push_back(t);
            continue;
        }
        t->queued_ = false;
        return t;
    }
    return nullptr;
}

void
Scheduler::noteBlockedOrDone(Thread &t)
{
    bumpRunnable(t, -1);
}

void
Scheduler::snapState(snap::Io &io,
                     const std::vector<std::unique_ptr<Thread>> &threads)
{
    // Quiescence: no runnable work, every core loop parked on its
    // wake event.
    K2_ASSERT(runq_.empty());
    io.pod(started_);
    io.pod(switches_);

    // Gated (NightWatch-suspended but ready) threads, by tid.
    std::uint64_t n = io.count(gated_.size());
    if (io.restoring()) {
        gated_.clear();
        gated_.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
            Tid tid = 0;
            io.pod(tid);
            Thread *found = nullptr;
            for (const auto &t : threads) {
                if (t->tid() == tid) {
                    found = t.get();
                    break;
                }
            }
            K2_ASSERT(found != nullptr);
            gated_.push_back(found);
        }
    } else {
        for (Thread *t : gated_) {
            Tid tid = t->tid();
            io.pod(tid);
        }
    }

    io.check(parked_.size(), "Scheduler::parked");
    for (ParkedCore &pc : parked_) {
        io.check(pc.track, "Scheduler::coreTrack");
        pc.wake->snapState(io);
        io.pod(pc.parked);
        io.pod(pc.lastRan);
    }

    // Per-process runnable counts: recomputed, not serialised -- the
    // map is keyed by host pointers and only ever queried via find(),
    // so an absent entry and an explicit zero are equivalent.
    if (io.restoring()) {
        runnableNormal_.clear();
        for (const auto &t : threads) {
            if (t->kind() == ThreadKind::Normal && t->process() &&
                (t->state() == Thread::State::Ready ||
                 t->state() == Thread::State::Running)) {
                ++runnableNormal_[t->process()];
            }
        }
    }
}

sim::Task<void>
Scheduler::coreLoop(soc::Core &core)
{
    sim::TrackId track = 0;
    for (const auto &pc : parked_) {
        if (pc.core == &core)
            track = pc.track;
    }
    for (;;) {
        Thread *t = pickNext();
        if (!t) {
            // Nothing runnable: park this core; its inactive timer
            // counts down while we wait to be kicked.
            ParkedCore *slot = nullptr;
            for (auto &pc : parked_) {
                if (pc.core == &core)
                    slot = &pc;
            }
            K2_ASSERT(slot != nullptr);
            slot->parked = true;
            // Work may have arrived while we were dispatching; if the
            // kick picks this very core it clears `parked` before we
            // could start waiting, so re-check instead of waiting on a
            // pulse we already consumed.
            kickOneCore();
            if (slot->parked)
                co_await slot->wake->wait();
            continue;
        }

        if (preSwitch_)
            co_await preSwitch_(*t, core);
        switches_.inc();
        co_await core.execTime(costs_.contextSwitch);
        if (postSwitch_)
            co_await postSwitch_(*t, core);

        K2_TRACE(engine_, sim::TraceCat::Sched, "dispatch '%s' on core %u",
                 t->name().c_str(), core.id());
        t->state_ = Thread::State::Running;
        t->core_ = &core;
        t->dispatchedAt_ = engine_.now();
        co_await t->dispatch();
        // One "run" slice per dispatch, labelled with the thread name,
        // so the trace shows what each core actually executed.
        if (engine_.tracer().spansOn())
            engine_.tracer().spanCompleteStr(
                t->dispatchedAt_, engine_.now() - t->dispatchedAt_, track,
                "run", t->name());
        core.noteThreadActivity();
        for (auto &pc : parked_) {
            if (pc.core == &core)
                pc.lastRan = engine_.now();
        }

        switch (t->state()) {
          case Thread::State::Ready:
            // Preempted or yielded.
            t->queued_ = true;
            if (t->suspended()) {
                gated_.push_back(t);
            } else {
                runq_.push_back(t);
                kickOneCore();
            }
            break;
          case Thread::State::Blocked:
            noteBlockedOrDone(*t);
            break;
          case Thread::State::Done:
            noteBlockedOrDone(*t);
            t->reap();
            break;
          case Thread::State::Running:
            K2_PANIC("thread '%s' parked while Running",
                     t->name().c_str());
        }
    }
}

} // namespace kern
} // namespace k2
