/**
 * @file
 * A kernel instance running on one coherence domain.
 *
 * Both K2 kernels (main and shadow) and the baseline single kernel are
 * instances of this class: it owns the domain's scheduler, the local
 * page-allocator instance, interrupt registration, and the mailbox
 * receive path. The K2 layer composes two of these with the DSM,
 * balloon drivers, interrupt router, and NightWatch protocol.
 */

#ifndef K2_KERN_KERNEL_H
#define K2_KERN_KERNEL_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "soc/soc.h"
#include "kern/buddy.h"
#include "kern/sched.h"
#include "kern/thread.h"
#include "kern/types.h"

namespace k2 {
namespace kern {

class Kernel
{
  public:
    /** Invoked (in interrupt context) for each received mail. */
    using MailHandler =
        std::function<sim::Task<void>(soc::Mail, soc::Core &)>;

    /**
     * @param soc The platform.
     * @param domain The coherence domain this kernel boots on.
     * @param name Kernel name ("main", "shadow", "linux").
     */
    Kernel(soc::Soc &soc, soc::DomainId domain, std::string name);

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;
    ~Kernel();

    /** @name Accessors. @{ */
    const std::string &name() const { return name_; }
    soc::Soc &soc() { return soc_; }
    sim::Engine &engine() { return soc_.engine(); }
    soc::DomainId domainId() const { return domainId_; }
    soc::CoherenceDomain &domain() { return soc_.domain(domainId_); }
    Scheduler &scheduler() { return *sched_; }
    BuddyAllocator &pageAllocator() { return *buddy_; }
    /** @} */

    /**
     * Boot: start the scheduler's core loops and claim the mailbox
     * interrupt.
     */
    void boot();
    bool booted() const { return booted_; }

    /**
     * Create a thread in this kernel.
     *
     * @param proc Owning process (may be nullptr for kernel threads).
     * @param name Thread name.
     * @param kind Normal or NightWatch.
     * @param body The thread's simulated code.
     * @return Borrowed pointer; the kernel owns the thread.
     */
    Thread *spawnThread(Process *proc, std::string name, ThreadKind kind,
                        Thread::Body body);

    /** Register an interrupt handler on this domain's controller. */
    void registerIrq(soc::IrqLine line, soc::IrqHandler handler);

    /**
     * Re-register every IRQ handler this kernel ever registered
     * (including the boot-time mailbox ISR), in original order.
     * Recovery calls this after resetting a crashed domain's
     * controller to replay the kernel's device setup.
     *
     * @return Number of lines re-registered.
     */
    std::size_t replayIrqRegistrations();

    /** Install the handler for incoming hardware mails. */
    void setMailHandler(MailHandler h) { mailHandler_ = std::move(h); }

    /** Post a mail to another domain's kernel. */
    void sendMail(soc::DomainId to, std::uint32_t word);

    /**
     * Interpose on outgoing mail (the reliable-mail shim). When set,
     * sendMail hands (to, word) to the transport instead of posting to
     * the mailbox directly.
     */
    using MailTransport =
        std::function<void(soc::DomainId, std::uint32_t)>;
    void setMailTransport(MailTransport t) { transport_ = std::move(t); }

    /** Post a mail bypassing any installed transport. */
    void sendMailRaw(soc::DomainId to, std::uint32_t word);

    /**
     * Time for this kernel's cores to run @p work units of kernel
     * bookkeeping (applies the core's kernelCostFactor).
     */
    sim::Duration kernelWorkTime(const soc::Core &core,
                                 std::uint64_t work) const;

    /** Charge @p work units of kernel bookkeeping to @p t's core. */
    sim::Task<void> chargeKernelWork(Thread &t, std::uint64_t work);

    /** @name Page-allocator service (an *independent* service). @{ */

    /**
     * Allocate 2^order pages from the local allocator instance,
     * charging the allocation latency to the calling thread.
     *
     * @return The block, or an empty range on failure.
     */
    sim::Task<PageRange> allocPages(Thread &t, unsigned order,
                                    Migrate migrate = Migrate::Movable);

    /** Free pages to the local allocator, charging latency. */
    sim::Task<void> freePages(Thread &t, PageRange range);

    /**
     * Hook invoked after every allocation/free with the current free
     * page count (the meta-level manager's pressure probe, §6.2;
     * "less than twenty instructions" -- we charge none).
     */
    using PressureProbe = std::function<void(std::uint64_t free_pages)>;
    void setPressureProbe(PressureProbe p) { probe_ = std::move(p); }

    /** @} */

    /** Threads created so far (for tests / teardown). */
    const std::vector<std::unique_ptr<Thread>> &threads() const
    {
        return threads_;
    }

    /**
     * Capture/restore the kernel: the thread table (pruned back to the
     * captured prefix; post-capture threads must already be Done and
     * reaped), every thread's semantic state, the scheduler, and the
     * page allocator.
     */
    void snapState(snap::Io &io);

  private:
    sim::Task<void> mailboxIsr(soc::Core &core);

    soc::Soc &soc_;
    soc::DomainId domainId_;
    std::string name_;
    std::unique_ptr<Scheduler> sched_;
    std::unique_ptr<BuddyAllocator> buddy_;
    std::vector<std::unique_ptr<Thread>> threads_;
    MailHandler mailHandler_;
    MailTransport transport_;
    PressureProbe probe_;
    /** Every (line, handler) registered, for crash-recovery replay. */
    std::vector<std::pair<soc::IrqLine, soc::IrqHandler>> irqLog_;
    bool booted_ = false;
};

} // namespace kern
} // namespace k2

#endif // K2_KERN_KERNEL_H
