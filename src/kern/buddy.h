/**
 * @file
 * A buddy physical-page allocator (the kernel's core memory service).
 *
 * Follows the Linux design the paper builds on: power-of-two blocks up
 * to kMaxOrder, per-order free lists, buddy coalescing on free, and a
 * movable/unmovable placement policy. Two K2-specific capabilities are
 * first-class here (§6.2):
 *
 *  - The allocator can start *empty* and be grown/shrunk at runtime by
 *    a balloon driver: addFreeRange() donates a physically contiguous
 *    range (deflate); reclaimRange() takes a specific range back
 *    (inflate), migrating movable pages out of it.
 *
 *  - Placement keeps movable pages near the balloon frontier: movable
 *    allocations are served from the highest-address free block,
 *    unmovable from the lowest, so reclaiming from the top mostly hits
 *    movable pages ("the efforts are likely to succeed", §6.2).
 *
 * Operations return a work-unit count (list manipulations, splits,
 * merges, per-page initialisation) that callers convert to simulated
 * instructions, which is how the Table 4 latencies arise.
 */

#ifndef K2_KERN_BUDDY_H
#define K2_KERN_BUDDY_H

#include <array>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sim/stats.h"
#include "kern/types.h"

namespace k2 {
namespace kern {

/** Page mobility class, mirroring Linux migrate types. */
enum class Migrate { Unmovable, Movable };

class BuddyAllocator
{
  public:
    /** Largest block: 2^12 pages = 16 MB of 4 KB pages (one K2 page
     *  block). */
    static constexpr unsigned kMaxOrder = 12;

    /** Work-unit cost model (converted to instructions by callers). */
    struct WorkModel
    {
        std::uint64_t base = 220;     //!< Fast-path list operation.
        std::uint64_t perSplit = 40;  //!< Splitting one block level.
        std::uint64_t perMerge = 45;  //!< Coalescing one level.
        std::uint64_t perPage = 17;   //!< Per-page init/zeroing.
        std::uint64_t perMigrate = 600; //!< Copy+remap one page.
    };

    /**
     * @param name For diagnostics.
     * @param base First pfn this allocator may ever manage. Must be
     *        aligned to 2^kMaxOrder pages.
     * @param npages Size of the managed window in pages.
     */
    BuddyAllocator(std::string name, Pfn base, std::uint64_t npages);

    const std::string &name() const { return name_; }
    Pfn base() const { return base_; }
    std::uint64_t windowPages() const { return npages_; }

    /** Pages currently free. */
    std::uint64_t freePages() const { return freePages_; }

    /** Pages currently allocated to clients. */
    std::uint64_t allocatedPages() const { return allocatedPages_; }

    /** Pages currently owned (free + allocated). */
    std::uint64_t ownedPages() const { return freePages_ + allocatedPages_; }

    /** Outcome of an allocation. */
    struct AllocResult
    {
        PageRange range;
        std::uint64_t work = 0; //!< Work units spent.
    };

    /**
     * Allocate a 2^order page block.
     *
     * @param order Block order (0 => one page).
     * @param migrate Mobility of the allocation; movable blocks are
     *        placed at the high end of free memory.
     * @return The block and its work cost, or nullopt if no free block
     *         of sufficient order exists.
     */
    std::optional<AllocResult> alloc(unsigned order, Migrate migrate);

    /**
     * Free a block previously returned by alloc().
     *
     * @param first First pfn of the block (must be an allocation head).
     * @return Work units spent (including coalescing).
     */
    std::uint64_t free(Pfn first);

    /** True if @p pfn is the head of a live allocation. */
    bool isAllocated(Pfn pfn) const;

    /** Mobility of a live allocation (head pfn). */
    Migrate migrateOf(Pfn pfn) const;

    /**
     * Donate a page range to the allocator (balloon deflate / boot).
     *
     * The range must lie in the window and not overlap owned pages.
     * @return Work units spent.
     */
    std::uint64_t addFreeRange(PageRange range);

    /** Outcome of reclaimRange(). */
    struct ReclaimResult
    {
        bool ok = false;            //!< False: range had unmovable pages
                                    //!< or migration targets ran out.
        std::uint64_t migrated = 0; //!< Movable pages evacuated.
        std::uint64_t work = 0;
    };

    /**
     * Take a specific range away from the allocator (balloon inflate).
     *
     * Free pages in the range are removed from the free lists; movable
     * allocated pages are migrated to free pages outside the range
     * (their owners keep logical ownership -- this models Linux page
     * migration). Fails without side effects if the range contains
     * unmovable allocations or there is not enough free space outside
     * it.
     */
    ReclaimResult reclaimRange(PageRange range);

    /**
     * Largest physically contiguous free block order available.
     */
    std::optional<unsigned> largestFreeOrder() const;

    /**
     * Count of movable pages among allocated pages in @p range.
     */
    std::uint64_t movablePagesIn(PageRange range) const;

    /** Internal consistency check (for tests); panics on corruption. */
    void checkInvariants() const;

  private:
    enum class PageState : std::uint8_t
    {
        NotOwned,  //!< Outside the allocator (owned by K2 / balloon).
        FreeHead,  //!< First page of a free block.
        FreeBody,  //!< Interior page of a free block.
        AllocHead, //!< First page of an allocation.
        AllocBody, //!< Interior page of an allocation.
    };

    struct PageMeta
    {
        PageState state = PageState::NotOwned;
        std::uint8_t order = 0;
        Migrate migrate = Migrate::Movable;
    };

    std::uint64_t rel(Pfn pfn) const { return pfn - base_; }
    PageMeta &meta(Pfn pfn);
    const PageMeta &meta(Pfn pfn) const;

    void insertFree(Pfn pfn, unsigned order);
    void removeFree(Pfn pfn, unsigned order);

    /** Find the head of the free block containing @p pfn. */
    Pfn freeBlockHead(Pfn pfn) const;

    /**
     * Insert the span [first, first+count) into the free lists as
     * maximal aligned blocks (the unique buddy decomposition of the
     * span). Page states are rewritten; the span's pages must not be
     * on any free list.
     *
     * @return Number of blocks inserted.
     */
    std::uint64_t insertFreeSpan(Pfn first, std::uint64_t count);

    /**
     * Split count the recursive buddy dissection performs to carve
     * [lo, hi) out of the block at @p blockFirst of @p order: nodes
     * fully inside the carve region dissect completely (2^k - 1
     * splits), partially covered nodes split once and recurse. Keeps
     * reclaimRange()'s work units identical to carving page by page.
     */
    static std::uint64_t carveSplits(Pfn blockFirst, unsigned order,
                                     Pfn lo, Pfn hi);

    std::string name_;
    Pfn base_;
    std::uint64_t npages_;
    std::vector<PageMeta> meta_;
    std::array<std::set<Pfn>, kMaxOrder + 1> freeLists_;
    std::uint64_t freePages_ = 0;
    std::uint64_t allocatedPages_ = 0;
    WorkModel workModel_;

  public:
    /** @name Statistics. @{ */
    sim::Counter allocCalls;
    sim::Counter freeCalls;
    sim::Counter failedAllocs;
    /** @} */

    const WorkModel &workModel() const { return workModel_; }
};

} // namespace kern
} // namespace k2

#endif // K2_KERN_BUDDY_H
