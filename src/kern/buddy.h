/**
 * @file
 * A buddy physical-page allocator (the kernel's core memory service).
 *
 * Follows the Linux design the paper builds on: power-of-two blocks up
 * to kMaxOrder, per-order free lists, buddy coalescing on free, and a
 * movable/unmovable placement policy. Two K2-specific capabilities are
 * first-class here (§6.2):
 *
 *  - The allocator can start *empty* and be grown/shrunk at runtime by
 *    a balloon driver: addFreeRange() donates a physically contiguous
 *    range (deflate); reclaimRange() takes a specific range back
 *    (inflate), migrating movable pages out of it.
 *
 *  - Placement keeps movable pages near the balloon frontier: movable
 *    allocations are served from the highest-address free block,
 *    unmovable from the lowest, so reclaiming from the top mostly hits
 *    movable pages ("the efforts are likely to succeed", §6.2).
 *
 * Operations return a work-unit count (list manipulations, splits,
 * merges, per-page initialisation) that callers convert to simulated
 * instructions, which is how the Table 4 latencies arise.
 */

#ifndef K2_KERN_BUDDY_H
#define K2_KERN_BUDDY_H

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/log.h"
#include "sim/stats.h"
#include "kern/types.h"

namespace k2 {
namespace snap {
class Io;
}
namespace kern {

/** Page mobility class, mirroring Linux migrate types. The narrow
 *  underlying type keeps PageMeta padding-free, so the per-page
 *  metadata vector can be snapshotted as raw bytes (snapState)
 *  without capturing indeterminate padding. */
enum class Migrate : std::uint8_t { Unmovable, Movable };

/**
 * Ordered set of free-block indices for one buddy order, as a
 * two-level bitmap.
 *
 * The allocator's free lists only ever need keyed insert/erase, the
 * extremal members (placement policy allocates movable blocks from
 * the top of memory, unmovable from the bottom), and sorted iteration
 * (snapshots, invariant checks). A bitmap serves all of those with no
 * per-node heap traffic, which is what made the former std::set free
 * lists the dominant cost of alloc()/free() (every split and coalesce
 * paid a red-black-tree node allocation).
 *
 * Level 0 has one bit per block index; the summary level has one bit
 * per level-0 word, so min()/max() scan the (tiny) summary word list
 * and finish with two bit scans. All operations are O(words in the
 * summary level), which is at most capacity / 4096.
 */
class BlockSet
{
  public:
    BlockSet() = default;

    explicit BlockSet(std::uint64_t capacity)
        : words_((capacity + 63) / 64, 0),
          summary_((words_.size() + 63) / 64, 0)
    {}

    bool empty() const { return count_ == 0; }
    std::uint64_t size() const { return count_; }

    /** Insert @p idx; it must not already be a member. */
    void
    insert(std::uint64_t idx)
    {
        const std::uint64_t w = idx / 64;
        const std::uint64_t bit = 1ull << (idx % 64);
        K2_ASSERT(!(words_[w] & bit));
        if (words_[w] == 0)
            summary_[w / 64] |= 1ull << (w % 64);
        words_[w] |= bit;
        ++count_;
    }

    /** Erase @p idx; it must be a member. */
    void
    erase(std::uint64_t idx)
    {
        const std::uint64_t w = idx / 64;
        const std::uint64_t bit = 1ull << (idx % 64);
        K2_ASSERT(words_[w] & bit);
        words_[w] &= ~bit;
        if (words_[w] == 0)
            summary_[w / 64] &= ~(1ull << (w % 64));
        --count_;
    }

    /** Smallest member; the set must be non-empty. */
    std::uint64_t
    min() const
    {
        for (std::uint64_t s = 0; s < summary_.size(); ++s) {
            if (summary_[s] == 0)
                continue;
            const std::uint64_t w =
                s * 64 +
                static_cast<std::uint64_t>(std::countr_zero(summary_[s]));
            return w * 64 +
                   static_cast<std::uint64_t>(std::countr_zero(words_[w]));
        }
        K2_PANIC("BlockSet::min on empty set");
    }

    /** Largest member; the set must be non-empty. */
    std::uint64_t
    max() const
    {
        for (std::uint64_t s = summary_.size(); s-- > 0;) {
            if (summary_[s] == 0)
                continue;
            const std::uint64_t w =
                s * 64 + 63 -
                static_cast<std::uint64_t>(std::countl_zero(summary_[s]));
            return w * 64 + 63 -
                   static_cast<std::uint64_t>(std::countl_zero(words_[w]));
        }
        K2_PANIC("BlockSet::max on empty set");
    }

    void
    clear()
    {
        std::fill(words_.begin(), words_.end(), 0);
        std::fill(summary_.begin(), summary_.end(), 0);
        count_ = 0;
    }

    /** Call @p fn on every member in ascending order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::uint64_t s = 0; s < summary_.size(); ++s) {
            std::uint64_t sw = summary_[s];
            while (sw != 0) {
                const std::uint64_t w =
                    s * 64 +
                    static_cast<std::uint64_t>(std::countr_zero(sw));
                sw &= sw - 1;
                std::uint64_t word = words_[w];
                while (word != 0) {
                    fn(w * 64 + static_cast<std::uint64_t>(
                                    std::countr_zero(word)));
                    word &= word - 1;
                }
            }
        }
    }

  private:
    std::vector<std::uint64_t> words_;
    std::vector<std::uint64_t> summary_;
    std::uint64_t count_ = 0;
};

class BuddyAllocator
{
  public:
    /** Largest block: 2^12 pages = 16 MB of 4 KB pages (one K2 page
     *  block). */
    static constexpr unsigned kMaxOrder = 12;

    /** Work-unit cost model (converted to instructions by callers). */
    struct WorkModel
    {
        std::uint64_t base = 220;     //!< Fast-path list operation.
        std::uint64_t perSplit = 40;  //!< Splitting one block level.
        std::uint64_t perMerge = 45;  //!< Coalescing one level.
        std::uint64_t perPage = 17;   //!< Per-page init/zeroing.
        std::uint64_t perMigrate = 600; //!< Copy+remap one page.
    };

    /**
     * @param name For diagnostics.
     * @param base First pfn this allocator may ever manage. Must be
     *        aligned to 2^kMaxOrder pages.
     * @param npages Size of the managed window in pages.
     */
    BuddyAllocator(std::string name, Pfn base, std::uint64_t npages);

    const std::string &name() const { return name_; }
    Pfn base() const { return base_; }
    std::uint64_t windowPages() const { return npages_; }

    /** Pages currently free. */
    std::uint64_t freePages() const { return freePages_; }

    /** Pages currently allocated to clients. */
    std::uint64_t allocatedPages() const { return allocatedPages_; }

    /** Pages currently owned (free + allocated). */
    std::uint64_t ownedPages() const { return freePages_ + allocatedPages_; }

    /** Outcome of an allocation. */
    struct AllocResult
    {
        PageRange range;
        std::uint64_t work = 0; //!< Work units spent.
    };

    /**
     * Allocate a 2^order page block.
     *
     * @param order Block order (0 => one page).
     * @param migrate Mobility of the allocation; movable blocks are
     *        placed at the high end of free memory.
     * @return The block and its work cost, or nullopt if no free block
     *         of sufficient order exists.
     */
    std::optional<AllocResult> alloc(unsigned order, Migrate migrate);

    /**
     * Free a block previously returned by alloc().
     *
     * @param first First pfn of the block (must be an allocation head).
     * @return Work units spent (including coalescing).
     */
    std::uint64_t free(Pfn first);

    /** True if @p pfn is the head of a live allocation. */
    bool isAllocated(Pfn pfn) const;

    /** Mobility of a live allocation (head pfn). */
    Migrate migrateOf(Pfn pfn) const;

    /**
     * Donate a page range to the allocator (balloon deflate / boot).
     *
     * The range must lie in the window and not overlap owned pages.
     * @return Work units spent.
     */
    std::uint64_t addFreeRange(PageRange range);

    /** Outcome of reclaimRange(). */
    struct ReclaimResult
    {
        bool ok = false;            //!< False: range had unmovable pages
                                    //!< or migration targets ran out.
        std::uint64_t migrated = 0; //!< Movable pages evacuated.
        std::uint64_t work = 0;
    };

    /**
     * Take a specific range away from the allocator (balloon inflate).
     *
     * Free pages in the range are removed from the free lists; movable
     * allocated pages are migrated to free pages outside the range
     * (their owners keep logical ownership -- this models Linux page
     * migration). Fails without side effects if the range contains
     * unmovable allocations or there is not enough free space outside
     * it.
     */
    ReclaimResult reclaimRange(PageRange range);

    /**
     * Largest physically contiguous free block order available.
     */
    std::optional<unsigned> largestFreeOrder() const;

    /**
     * Count of movable pages among allocated pages in @p range.
     */
    std::uint64_t movablePagesIn(PageRange range) const;

    /** Internal consistency check (for tests); panics on corruption. */
    void checkInvariants() const;

    /** Capture/restore page metadata, free lists, and counters. */
    void snapState(snap::Io &io);

  private:
    enum class PageState : std::uint8_t
    {
        NotOwned,  //!< Outside the allocator (owned by K2 / balloon).
        FreeHead,  //!< First page of a free block.
        FreeBody,  //!< Interior page of a free block.
        AllocHead, //!< First page of an allocation.
        AllocBody, //!< Interior page of an allocation.
    };

    struct PageMeta
    {
        PageState state = PageState::NotOwned;
        std::uint8_t order = 0;
        Migrate migrate = Migrate::Movable;
    };

    std::uint64_t rel(Pfn pfn) const { return pfn - base_; }
    PageMeta &meta(Pfn pfn);
    const PageMeta &meta(Pfn pfn) const;

    void insertFree(Pfn pfn, unsigned order);

    /**
     * insertFree without the interior-page rewrite. Precondition:
     * every page of the block except possibly the head is already
     * FreeBody (true when splitting or coalescing free blocks, where
     * only head positions change). Keeps meta_ byte-identical to the
     * full rewrite while skipping the 2^order - 1 redundant stores
     * that used to dominate alloc()/free().
     */
    void insertFreeHead(Pfn pfn, unsigned order);

    void removeFree(Pfn pfn, unsigned order);

    /** Find the head of the free block containing @p pfn. */
    Pfn freeBlockHead(Pfn pfn) const;

    /**
     * Insert the span [first, first+count) into the free lists as
     * maximal aligned blocks (the unique buddy decomposition of the
     * span). Page states are rewritten; the span's pages must not be
     * on any free list.
     *
     * @return Number of blocks inserted.
     */
    std::uint64_t insertFreeSpan(Pfn first, std::uint64_t count);

    /**
     * Split count the recursive buddy dissection performs to carve
     * [lo, hi) out of the block at @p blockFirst of @p order: nodes
     * fully inside the carve region dissect completely (2^k - 1
     * splits), partially covered nodes split once and recurse. Keeps
     * reclaimRange()'s work units identical to carving page by page.
     */
    static std::uint64_t carveSplits(Pfn blockFirst, unsigned order,
                                     Pfn lo, Pfn hi);

    std::string name_;
    Pfn base_;
    std::uint64_t npages_;
    std::vector<PageMeta> meta_;
    /** Free block heads per order, keyed by rel(pfn) >> order. */
    std::array<BlockSet, kMaxOrder + 1> freeLists_;
    std::uint64_t freePages_ = 0;
    std::uint64_t allocatedPages_ = 0;
    WorkModel workModel_;

  public:
    /** @name Statistics. @{ */
    sim::Counter allocCalls;
    sim::Counter freeCalls;
    sim::Counter failedAllocs;
    /** @} */

    const WorkModel &workModel() const { return workModel_; }
};

} // namespace kern
} // namespace k2

#endif // K2_KERN_BUDDY_H
