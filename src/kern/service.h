/**
 * @file
 * OS service classification (paper §5.3).
 *
 * Refactoring a mature OS for multiple coherence domains classifies
 * each service by how it is replicated:
 *  - Private: specific to one core type or domain-local resource;
 *    implemented separately per kernel with unrelated state.
 *  - Independent: high performance impact; per-kernel instances with
 *    no shared state, coordinated at the meta level (page allocator,
 *    interrupt management).
 *  - Shadowed: everything else (device drivers, file systems, network
 *    stack); one implementation whose state K2 keeps coherent
 *    transparently through the DSM.
 */

#ifndef K2_KERN_SERVICE_H
#define K2_KERN_SERVICE_H

#include <map>
#include <string>
#include <vector>

namespace k2 {
namespace kern {

enum class ServiceClass
{
    Private,
    Independent,
    Shadowed,
};

/** Printable name of a service class. */
const char *serviceClassName(ServiceClass c);

class ServiceRegistry
{
  public:
    /** Record @p service as belonging to @p cls. */
    void classify(const std::string &service, ServiceClass cls);

    /** Look up a service; fatal if unknown. */
    ServiceClass of(const std::string &service) const;

    bool known(const std::string &service) const;

    /** All services of a given class, sorted by name. */
    std::vector<std::string> listed(ServiceClass cls) const;

    std::size_t size() const { return map_.size(); }

  private:
    std::map<std::string, ServiceClass> map_;
};

/** The classification K2 applies to the kernel it refactors (§5.3). */
ServiceRegistry defaultK2Registry();

} // namespace kern
} // namespace k2

#endif // K2_KERN_SERVICE_H
