/**
 * @file
 * The unified kernel virtual address space of K2 (paper §6.1, Fig. 4).
 *
 * Physical memory is carved into per-kernel *local regions* (kernel
 * code and statically allocated private/independent state) followed by
 * one *global region* (shared OS state and all dynamically allocated
 * pages). Local regions are populated from the start of physical
 * memory -- shadow kernel first, then the main kernel -- so the main
 * kernel's local region sits directly before the global region and the
 * main kernel sees no memory hole.
 *
 * Both kernels use the same direct-map offset, so any shared memory
 * object has the identical virtual address in both kernels, and
 * private objects live in non-overlapping ranges.
 */

#ifndef K2_KERN_LAYOUT_H
#define K2_KERN_LAYOUT_H

#include <cstdint>
#include <string>
#include <vector>

#include "kern/types.h"

namespace k2 {
namespace kern {

class AddressSpaceLayout
{
  public:
    struct Region
    {
        std::string owner;
        PageRange pages;
        bool operator==(const Region &) const = default;
    };

    /**
     * @param page_bytes Page size.
     * @param total_pages Total physical pages.
     * @param locals Local region sizes in pages, in placement order
     *        (shadow kernels first, the main kernel last). Each is
     *        rounded up to 16 MB alignment so the global region starts
     *        on a balloon page-block boundary.
     */
    AddressSpaceLayout(std::size_t page_bytes, std::uint64_t total_pages,
                       std::vector<std::pair<std::string,
                                             std::uint64_t>> locals);

    std::size_t numLocals() const { return locals_.size(); }
    const Region &local(std::size_t i) const { return locals_.at(i); }

    /** Find a kernel's local region by owner name. */
    const Region &localOf(const std::string &owner) const;

    /** The shared global region. */
    const Region &global() const { return global_; }

    /** The direct-map virtual base (identical in every kernel). */
    std::uint64_t virtBase() const { return kVirtBase; }

    /** Kernel virtual address of a physical page. */
    std::uint64_t
    vaddrOf(Pfn pfn) const
    {
        return kVirtBase + pfn * pageBytes_;
    }

    /** Physical page of a kernel virtual address. */
    Pfn
    pfnOf(std::uint64_t vaddr) const
    {
        return (vaddr - kVirtBase) / pageBytes_;
    }

    /** True if @p pfn lies in the global region. */
    bool isGlobal(Pfn pfn) const { return global_.pages.contains(pfn); }

    std::size_t pageBytes() const { return pageBytes_; }
    std::uint64_t totalPages() const { return totalPages_; }

  private:
    static constexpr std::uint64_t kVirtBase = 0xC0000000ull;

    std::size_t pageBytes_;
    std::uint64_t totalPages_;
    std::vector<Region> locals_;
    Region global_;
};

} // namespace kern
} // namespace k2

#endif // K2_KERN_LAYOUT_H
