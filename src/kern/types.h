/**
 * @file
 * Common kernel-layer types.
 */

#ifndef K2_KERN_TYPES_H
#define K2_KERN_TYPES_H

#include <cstdint>

namespace k2 {
namespace kern {

/** Process identifier (global across the single system image). */
using Pid = std::uint32_t;

/** Thread identifier (global across the single system image). */
using Tid = std::uint32_t;

/** Physical page frame number. */
using Pfn = std::uint64_t;

/** A contiguous range of physical pages. */
struct PageRange
{
    Pfn first = 0;
    std::uint64_t count = 0;

    bool
    contains(Pfn p) const
    {
        return p >= first && p < first + count;
    }

    Pfn end() const { return first + count; }
    bool empty() const { return count == 0; }
    bool operator==(const PageRange &) const = default;
};

/** Kinds of application threads (paper §8). */
enum class ThreadKind
{
    Normal,     //!< Performance-critical; runs on the strong domain.
    NightWatch, //!< Light task; pinned to the weak domain.
};

} // namespace kern
} // namespace k2

#endif // K2_KERN_TYPES_H
