#include "kern/service.h"

#include "sim/log.h"

namespace k2 {
namespace kern {

const char *
serviceClassName(ServiceClass c)
{
    switch (c) {
      case ServiceClass::Private:
        return "private";
      case ServiceClass::Independent:
        return "independent";
      case ServiceClass::Shadowed:
        return "shadowed";
    }
    return "?";
}

void
ServiceRegistry::classify(const std::string &service, ServiceClass cls)
{
    map_[service] = cls;
}

ServiceClass
ServiceRegistry::of(const std::string &service) const
{
    auto it = map_.find(service);
    if (it == map_.end())
        K2_FATAL("unknown OS service '%s'", service.c_str());
    return it->second;
}

bool
ServiceRegistry::known(const std::string &service) const
{
    return map_.count(service) != 0;
}

std::vector<std::string>
ServiceRegistry::listed(ServiceClass cls) const
{
    std::vector<std::string> out;
    for (const auto &[name, c] : map_) {
        if (c == cls)
            out.push_back(name);
    }
    return out;
}

ServiceRegistry
defaultK2Registry()
{
    ServiceRegistry reg;
    // Step 1 (§5.3): core-type / domain-local services stay private.
    reg.classify("power-management", ServiceClass::Private);
    reg.classify("exception-handling", ServiceClass::Private);
    // Step 2: complicated, rarely-used global operations are private
    // to the main kernel.
    reg.classify("platform-init", ServiceClass::Private);
    // Step 3: high performance impact => independent instances.
    reg.classify("page-allocator", ServiceClass::Independent);
    reg.classify("interrupt-management", ServiceClass::Independent);
    reg.classify("scheduler", ServiceClass::Independent);
    // Step 4: everything managing platform resources with low-to-
    // moderate performance impact is shadowed.
    reg.classify("dma-driver", ServiceClass::Shadowed);
    reg.classify("block-driver", ServiceClass::Shadowed);
    reg.classify("ext2", ServiceClass::Shadowed);
    reg.classify("udp-stack", ServiceClass::Shadowed);
    return reg;
}

} // namespace kern
} // namespace k2
