#include "kern/thread.h"

#include <algorithm>

#include "sim/log.h"
#include "snap/io.h"
#include "kern/kernel.h"
#include "kern/sched.h"

namespace k2 {
namespace kern {

std::size_t
Process::numNightWatch() const
{
    return static_cast<std::size_t>(
        std::count_if(threads_.begin(), threads_.end(),
                      [](const Thread *t) { return t->isNightWatch(); }));
}

void
Thread::exitCritical()
{
    K2_ASSERT(critical_ > 0);
    if (--critical_ == 0 && suspendPending_) {
        suspendPending_ = false;
        scheduler().setSuspended(*this, true);
    }
}

void
Process::snapState(snap::Io &io)
{
    io.check(pid_, "Process::pid");
    std::uint64_t n = io.count(threads_.size());
    if (io.restoring()) {
        K2_ASSERT(n <= threads_.size());
        threads_.resize(static_cast<std::size_t>(n));
    }
    for (Thread *t : threads_)
        io.check(t->tid(), "Process::thread");
}

Thread::Thread(Kernel &kernel, Process *proc, Tid tid, std::string name,
               ThreadKind kind, Body body)
    : kernel_(kernel), process_(proc), tid_(tid), name_(std::move(name)),
      kind_(kind), body_(std::move(body)), doneEvent_(kernel.engine())
{
    // Start the wrapper coroutine immediately; it runs to the first
    // park() so the thread is dispatchable before the constructor
    // returns.
    auto task = run();
    auto handle = task.release();
    handle.promise().setDetached();
    handle.resume();
    K2_ASSERT(parked_);
}

sim::Engine &
Thread::engine() const
{
    return kernel_.engine();
}

Scheduler &
Thread::scheduler() const
{
    return kernel_.scheduler();
}

soc::Core &
Thread::core()
{
    K2_ASSERT(core_ != nullptr);
    return *core_;
}

void
Thread::snapState(snap::Io &io)
{
    io.pod(state_);
    io.pod(suspended_);
    io.pod(queued_);
    io.pod(everRan_);
    io.pod(dispatchedAt_);
    // Core binding by id (pointers are host state).
    std::uint32_t core = core_ ? core_->id() + 1 : 0;
    io.pod(core);
    if (io.restoring()) {
        core_ = nullptr;
        if (core != 0) {
            for (soc::Core *c : scheduler().cores_) {
                if (c->id() == core - 1) {
                    core_ = c;
                    break;
                }
            }
            K2_ASSERT(core_ != nullptr);
        }
    }
    // Frame positions are structural: record their shape only.
    io.check(parked_ ? 1 : 0, "Thread::parked");
    io.check(schedHandle_ ? 1 : 0, "Thread::schedHandle");
    doneEvent_.snapState(io);
}

sim::Task<void>
Thread::run()
{
    co_await park(); // wait for the first dispatch
    co_await body_(*this);
    state_ = State::Done;
    doneEvent_.set();
    co_await park(); // hand the core back; reaped by the scheduler
}

void
Thread::reap()
{
    K2_ASSERT(state_ == State::Done);
    if (parked_) {
        auto h = std::exchange(parked_, nullptr);
        h.destroy();
    }
}

sim::Task<void>
Thread::parkAs(State next)
{
    K2_ASSERT(state_ == State::Running);
    state_ = next;
    co_await park();
    K2_ASSERT(state_ == State::Running);
}

bool
Thread::shouldPark() const
{
    if (suspended_)
        return true;
    if (engine().now() - dispatchedAt_ < scheduler().quantum())
        return false;
    return scheduler().shouldPreempt(*this);
}

sim::Task<void>
Thread::exec(std::uint64_t instructions)
{
    while (instructions > 0) {
        const std::uint64_t quantum = scheduler().quantumInstr(core());
        const std::uint64_t slice = std::min(instructions, quantum);
        co_await core().exec(slice);
        instructions -= slice;
        if (instructions > 0 && shouldPark())
            co_await parkAs(State::Ready);
    }
    if (shouldPark())
        co_await parkAs(State::Ready);
}

sim::Task<void>
Thread::execTime(sim::Duration d)
{
    // Pure delegation: hand back the core's task itself instead of
    // wrapping it in another coroutine frame per call.
    return core().execTime(d);
}

sim::Task<void>
Thread::sleep(sim::Duration d)
{
    engine().after(d, [this]() { scheduler().makeReady(*this); });
    co_await parkAs(State::Blocked);
}

sim::Task<void>
Thread::watchAndReady(sim::Event &ev)
{
    co_await ev.wait();
    scheduler().makeReady(*this);
}

sim::Task<void>
Thread::wait(sim::Event &ev)
{
    engine().spawn(watchAndReady(ev));
    co_await parkAs(State::Blocked);
}

sim::Task<void>
Thread::yield()
{
    co_await parkAs(State::Ready);
}

// Mutable engine access for shouldPark (const path).
bool
threadDebugIsParked(const Thread &t)
{
    return t.state() != Thread::State::Running;
}

} // namespace kern
} // namespace k2
