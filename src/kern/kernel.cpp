#include "kern/kernel.h"

#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace kern {

Kernel::Kernel(soc::Soc &soc, soc::DomainId domain, std::string name)
    : soc_(soc), domainId_(domain), name_(std::move(name))
{
    auto &dom = soc_.domain(domainId_);
    std::vector<soc::Core *> cores;
    for (std::size_t i = 0; i < dom.numCores(); ++i)
        cores.push_back(&dom.core(i));
    sched_ = std::make_unique<Scheduler>(soc_.engine(), std::move(cores),
                                         soc_.costs());
    // Each kernel's allocator instance can manage any page of RAM; it
    // starts empty and is populated at boot (baseline) or through the
    // balloon driver (K2).
    buddy_ = std::make_unique<BuddyAllocator>(name_ + "-buddy", 0,
                                              soc_.numPages());
}

Kernel::~Kernel() = default;

void
Kernel::snapState(snap::Io &io)
{
    io.pod(booted_);
    io.check(irqLog_.size(), "Kernel::irqLog");

    // Thread table: prune to the captured prefix. Threads spawned
    // after the capture point are workload bodies that have run to
    // completion (Done and reaped) by the time the system re-quiesces;
    // the boot-time daemons of the prefix persist.
    std::uint64_t n = io.count(threads_.size());
    if (io.restoring()) {
        K2_ASSERT(n <= threads_.size());
        for (std::size_t i = static_cast<std::size_t>(n);
             i < threads_.size(); ++i)
            K2_ASSERT(threads_[i]->done());
        threads_.resize(static_cast<std::size_t>(n));
    }
    for (auto &t : threads_) {
        io.check(t->tid(), "Kernel::thread");
        t->snapState(io);
    }

    sched_->snapState(io, threads_);
    buddy_->snapState(io);
}

void
Kernel::boot()
{
    K2_ASSERT(!booted_);
    booted_ = true;
    sched_->start();
    registerIrq(soc::kIrqMailbox,
                [this](soc::Core &core) { return mailboxIsr(core); });
}

sim::Task<void>
Kernel::mailboxIsr(soc::Core &core)
{
    while (auto mail = soc_.mailbox().tryRead(domainId_)) {
        // Reading the mailbox register costs one bus access.
        co_await core.execTime(soc_.costs().busAccess);
        if (mailHandler_)
            co_await mailHandler_(*mail, core);
        else
            K2_PANIC("kernel '%s': mail received with no handler",
                     name_.c_str());
    }
}

void
Kernel::sendMail(soc::DomainId to, std::uint32_t word)
{
    if (transport_)
        transport_(to, word);
    else
        soc_.mailbox().send(domainId_, to, word);
}

void
Kernel::sendMailRaw(soc::DomainId to, std::uint32_t word)
{
    soc_.mailbox().send(domainId_, to, word);
}

Thread *
Kernel::spawnThread(Process *proc, std::string name, ThreadKind kind,
                    Thread::Body body)
{
    K2_ASSERT(booted_);
    threads_.push_back(std::make_unique<Thread>(
        *this, proc, soc_.allocThreadId(), std::move(name), kind,
        std::move(body)));
    Thread *t = threads_.back().get();
    if (proc)
        proc->addThread(t);
    sched_->makeReady(*t);
    return t;
}

void
Kernel::registerIrq(soc::IrqLine line, soc::IrqHandler handler)
{
    irqLog_.emplace_back(line, handler);
    domain().irqCtrl().registerHandler(line, std::move(handler));
}

std::size_t
Kernel::replayIrqRegistrations()
{
    auto &ctrl = domain().irqCtrl();
    for (const auto &[line, handler] : irqLog_)
        ctrl.registerHandler(line, handler);
    return irqLog_.size();
}

sim::Duration
Kernel::kernelWorkTime(const soc::Core &core, std::uint64_t work) const
{
    const double instr =
        static_cast<double>(work) * core.spec().kernelCostFactor;
    const auto cycles = static_cast<std::uint64_t>(
        instr / core.spec().instrPerCycle + 0.5);
    return sim::cyclesToTime(cycles ? cycles : 1, core.hz());
}

sim::Task<void>
Kernel::chargeKernelWork(Thread &t, std::uint64_t work)
{
    const double instr =
        static_cast<double>(work) * t.core().spec().kernelCostFactor;
    co_await t.exec(static_cast<std::uint64_t>(instr + 0.5));
}

sim::Task<PageRange>
Kernel::allocPages(Thread &t, unsigned order, Migrate migrate)
{
    auto res = buddy_->alloc(order, migrate);
    if (!res) {
        if (probe_)
            probe_(buddy_->freePages());
        co_return PageRange{};
    }
    co_await chargeKernelWork(t, res->work);
    if (probe_)
        probe_(buddy_->freePages());
    co_return res->range;
}

sim::Task<void>
Kernel::freePages(Thread &t, PageRange range)
{
    const std::uint64_t work = buddy_->free(range.first);
    co_await chargeKernelWork(t, work);
    if (probe_)
        probe_(buddy_->freePages());
}

} // namespace kern
} // namespace k2
