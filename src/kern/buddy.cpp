#include "kern/buddy.h"

#include <algorithm>

#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace kern {

BuddyAllocator::BuddyAllocator(std::string name, Pfn base,
                               std::uint64_t npages)
    : name_(std::move(name)), base_(base), npages_(npages), meta_(npages)
{
    const std::uint64_t align = 1ull << kMaxOrder;
    if (base_ % align != 0)
        K2_FATAL("allocator '%s' base pfn %llu not 16MB aligned",
                 name_.c_str(), static_cast<unsigned long long>(base_));
    for (unsigned order = 0; order <= kMaxOrder; ++order)
        freeLists_[order] = BlockSet((npages_ >> order) + 1);
}

BuddyAllocator::PageMeta &
BuddyAllocator::meta(Pfn pfn)
{
    K2_ASSERT(pfn >= base_ && rel(pfn) < npages_);
    return meta_[rel(pfn)];
}

const BuddyAllocator::PageMeta &
BuddyAllocator::meta(Pfn pfn) const
{
    K2_ASSERT(pfn >= base_ && rel(pfn) < npages_);
    return meta_[rel(pfn)];
}

void
BuddyAllocator::insertFree(Pfn pfn, unsigned order)
{
    insertFreeHead(pfn, order);
    const std::uint64_t n = 1ull << order;
    for (std::uint64_t i = 1; i < n; ++i)
        meta_[rel(pfn) + i].state = PageState::FreeBody;
}

void
BuddyAllocator::insertFreeHead(Pfn pfn, unsigned order)
{
    freeLists_[order].insert(rel(pfn) >> order);
    meta(pfn).state = PageState::FreeHead;
    meta(pfn).order = static_cast<std::uint8_t>(order);
}

void
BuddyAllocator::removeFree(Pfn pfn, unsigned order)
{
    freeLists_[order].erase(rel(pfn) >> order);
}

std::optional<BuddyAllocator::AllocResult>
BuddyAllocator::alloc(unsigned order, Migrate migrate)
{
    allocCalls.inc();
    if (order > kMaxOrder) {
        failedAllocs.inc();
        return std::nullopt;
    }

    // Placement policy: movable from the top of memory, unmovable from
    // the bottom (keeps movable pages near the balloon frontier, §6.2).
    // Scan all sufficient orders for the extremal block so placement is
    // strictly address-ordered.
    bool have = false;
    unsigned found = 0;
    Pfn block = 0;
    for (unsigned o = order; o <= kMaxOrder; ++o) {
        if (freeLists_[o].empty())
            continue;
        if (migrate == Migrate::Movable) {
            const Pfn cand = base_ + (freeLists_[o].max() << o);
            const Pfn cand_end = cand + (1ull << o);
            if (!have || cand_end > block + (1ull << found)) {
                have = true;
                found = o;
                block = cand;
            }
        } else {
            const Pfn cand = base_ + (freeLists_[o].min() << o);
            if (!have || cand < block) {
                have = true;
                found = o;
                block = cand;
            }
        }
    }
    if (!have) {
        failedAllocs.inc();
        return std::nullopt;
    }

    std::uint64_t work = workModel_.base;
    removeFree(block, found);

    // Split down to the requested order. For movable requests keep the
    // *upper* buddy and return the lower one to the free lists, and
    // vice versa, to preserve the placement policy. Splitting a free
    // block only moves heads around -- every interior page is already
    // FreeBody -- so the halves are re-inserted head-only.
    while (found > order) {
        --found;
        const Pfn lower = block;
        const Pfn upper = block + (1ull << found);
        if (migrate == Migrate::Movable) {
            insertFreeHead(lower, found);
            block = upper;
        } else {
            insertFreeHead(upper, found);
            block = lower;
        }
        work += workModel_.perSplit;
    }

    const std::uint64_t n = 1ull << order;
    meta(block).state = PageState::AllocHead;
    meta(block).order = static_cast<std::uint8_t>(order);
    meta(block).migrate = migrate;
    for (std::uint64_t i = 1; i < n; ++i)
        meta_[rel(block) + i].state = PageState::AllocBody;

    freePages_ -= n;
    allocatedPages_ += n;
    work += workModel_.perPage * n;
    return AllocResult{PageRange{block, n}, work};
}

std::uint64_t
BuddyAllocator::free(Pfn first)
{
    freeCalls.inc();
    PageMeta &m = meta(first);
    if (m.state != PageState::AllocHead)
        K2_PANIC("allocator '%s': free of pfn %llu which is not an "
                 "allocation head", name_.c_str(),
                 static_cast<unsigned long long>(first));

    unsigned order = m.order;
    std::uint64_t n = 1ull << order;
    allocatedPages_ -= n;
    freePages_ += n;
    std::uint64_t work = workModel_.base;

    // Only the freed allocation's own pages change body state; the
    // interiors of any buddies absorbed below are already FreeBody.
    for (std::uint64_t i = 0; i < n; ++i)
        meta_[rel(first) + i].state = PageState::FreeBody;

    // Coalesce with free buddies. Each absorbed buddy's head becomes
    // an interior page of the merged block.
    Pfn block = first;
    while (order < kMaxOrder) {
        const std::uint64_t buddy_rel = rel(block) ^ (1ull << order);
        if (buddy_rel >= npages_)
            break;
        const Pfn buddy = base_ + buddy_rel;
        if (meta(buddy).state != PageState::FreeHead ||
            meta(buddy).order != order) {
            break;
        }
        removeFree(buddy, order);
        meta(buddy).state = PageState::FreeBody;
        block = std::min(block, buddy);
        ++order;
        work += workModel_.perMerge;
    }
    insertFreeHead(block, order);
    return work;
}

bool
BuddyAllocator::isAllocated(Pfn pfn) const
{
    return meta(pfn).state == PageState::AllocHead;
}

Migrate
BuddyAllocator::migrateOf(Pfn pfn) const
{
    K2_ASSERT(meta(pfn).state == PageState::AllocHead);
    return meta(pfn).migrate;
}

std::uint64_t
BuddyAllocator::addFreeRange(PageRange range)
{
    K2_ASSERT(range.first >= base_ && range.end() <= base_ + npages_);
    std::uint64_t work = workModel_.base;
    for (Pfn p = range.first; p < range.end(); ++p) {
        if (meta(p).state != PageState::NotOwned)
            K2_PANIC("allocator '%s': addFreeRange over owned pfn %llu",
                     name_.c_str(), static_cast<unsigned long long>(p));
    }

    work += workModel_.perMerge * insertFreeSpan(range.first, range.count);
    freePages_ += range.count;
    return work;
}

std::uint64_t
BuddyAllocator::insertFreeSpan(Pfn first, std::uint64_t count)
{
    // Greedily insert maximal aligned blocks.
    std::uint64_t blocks = 0;
    Pfn p = first;
    std::uint64_t remaining = count;
    while (remaining > 0) {
        unsigned order = kMaxOrder;
        while (order > 0 &&
               ((rel(p) & ((1ull << order) - 1)) != 0 ||
                (1ull << order) > remaining)) {
            --order;
        }
        insertFree(p, order);
        ++blocks;
        p += 1ull << order;
        remaining -= 1ull << order;
    }
    return blocks;
}

Pfn
BuddyAllocator::freeBlockHead(Pfn pfn) const
{
    // Walk back to the FreeHead covering pfn. Heads are aligned, so
    // try successively larger alignments.
    for (unsigned order = 0; order <= kMaxOrder; ++order) {
        const Pfn cand = base_ + (rel(pfn) & ~((1ull << order) - 1));
        const PageMeta &m = meta(cand);
        if (m.state == PageState::FreeHead && m.order >= order &&
            rel(pfn) < rel(cand) + (1ull << m.order)) {
            return cand;
        }
    }
    K2_PANIC("allocator '%s': pfn %llu is not inside a free block",
             name_.c_str(), static_cast<unsigned long long>(pfn));
}

std::uint64_t
BuddyAllocator::carveSplits(Pfn blockFirst, unsigned order, Pfn lo,
                            Pfn hi)
{
    const Pfn block_end = blockFirst + (1ull << order);
    if (hi <= blockFirst || lo >= block_end)
        return 0;
    if (lo <= blockFirst && block_end <= hi)
        return (1ull << order) - 1;
    // Partially covered: one split, then recurse into both halves.
    const unsigned half = order - 1;
    const Pfn mid = blockFirst + (1ull << half);
    return 1 + carveSplits(blockFirst, half, lo, hi) +
           carveSplits(mid, half, lo, hi);
}

std::uint64_t
BuddyAllocator::movablePagesIn(PageRange range) const
{
    std::uint64_t count = 0;
    for (Pfn p = range.first; p < range.end(); ++p) {
        const PageMeta &m = meta(p);
        if (m.state == PageState::AllocHead ||
            m.state == PageState::AllocBody) {
            // Mobility is stored on the head; bodies inherit it. Find
            // the head by walking back (bodies follow heads within
            // kMaxOrder alignment).
            Pfn head = p;
            while (meta(head).state == PageState::AllocBody)
                --head;
            if (meta(head).migrate == Migrate::Movable)
                ++count;
        }
    }
    return count;
}

BuddyAllocator::ReclaimResult
BuddyAllocator::reclaimRange(PageRange range)
{
    K2_ASSERT(range.first >= base_ && range.end() <= base_ + npages_);
    ReclaimResult res;

    // Pass 1: the range must contain only free pages and movable
    // allocations, all fully inside the range. Walk block to block
    // (the per-order metadata makes every block's extent known at its
    // head), counting the free pages inside the range as we go.
    std::uint64_t movable = 0;
    std::uint64_t free_inside = 0;
    for (Pfn p = range.first; p < range.end();) {
        const PageMeta &m = meta(p);
        switch (m.state) {
          case PageState::NotOwned:
            K2_PANIC("allocator '%s': reclaim of unowned pfn %llu",
                     name_.c_str(), static_cast<unsigned long long>(p));
          case PageState::AllocHead: {
            if (m.migrate == Migrate::Unmovable)
                return res; // fail, no side effects
            const std::uint64_t n = 1ull << m.order;
            if (p + n > range.end())
                return res; // allocation straddles the range end
            movable += n;
            p += n;
            break;
          }
          case PageState::AllocBody:
            // A body with no head inside the range: allocation
            // straddles the range start.
            return res;
          case PageState::FreeHead: {
            const Pfn block_end = p + (1ull << m.order);
            free_inside += std::min(block_end, range.end()) - p;
            p = block_end;
            break;
          }
          case PageState::FreeBody: {
            // Only possible when a free block straddles range.first.
            const Pfn head = freeBlockHead(p);
            const Pfn block_end = head + (1ull << meta(head).order);
            free_inside += std::min(block_end, range.end()) - p;
            p = block_end;
            break;
          }
        }
    }

    // Migration feasibility: enough free pages strictly outside the
    // range. (Free pages inside it are being reclaimed.)
    if (freePages_ - free_inside < movable)
        return res;

    // Pass 2: evacuate movable allocations. Each evacuated block is
    // re-allocated outside the range (placement policy naturally picks
    // blocks away from the frontier) and the old block becomes
    // NotOwned. Clients address pages through their own mappings,
    // which Linux page migration updates; we model the cost only.
    for (Pfn p = range.first; p < range.end();) {
        PageMeta &m = meta(p);
        if (m.state == PageState::AllocHead) {
            const std::uint64_t n = 1ull << m.order;
            // Mark old pages as leaving the allocator.
            for (std::uint64_t i = 0; i < n; ++i)
                meta_[rel(p) + i].state = PageState::NotOwned;
            allocatedPages_ -= n;
            res.migrated += n;
            res.work += workModel_.perMigrate * n;
            p += n;
        } else if (m.state == PageState::FreeHead) {
            p += 1ull << m.order;
        } else if (m.state == PageState::FreeBody) {
            const Pfn head = freeBlockHead(p);
            p = head + (1ull << meta(head).order);
        } else {
            ++p;
        }
    }

    // Pass 3: carve the range out of the free blocks that intersect
    // it, a whole block at a time: unlink the block, mark the
    // intersection NotOwned, and reinsert the parts outside the range
    // as maximal aligned blocks. Work units charge the splits the
    // recursive dissection would perform (carveSplits), so the cost
    // model is unchanged from carving page by page -- only the host
    // time is.
    for (Pfn p = range.first; p < range.end();) {
        const PageState s = meta(p).state;
        if (s != PageState::FreeHead && s != PageState::FreeBody) {
            ++p;
            continue;
        }
        const Pfn head = (s == PageState::FreeHead) ? p
                                                    : freeBlockHead(p);
        const unsigned order = meta(head).order;
        const Pfn block_end = head + (1ull << order);
        const Pfn lo = std::max(head, range.first);
        const Pfn hi = std::min(block_end, range.end());

        removeFree(head, order);
        res.work += workModel_.perSplit * carveSplits(head, order, lo, hi);
        for (Pfn q = lo; q < hi; ++q)
            meta_[rel(q)].state = PageState::NotOwned;
        freePages_ -= hi - lo;
        if (head < lo)
            insertFreeSpan(head, lo - head);
        if (hi < block_end)
            insertFreeSpan(hi, block_end - hi);
        p = block_end;
    }

    // Pass 4: now re-home the evacuated pages outside the range.
    std::uint64_t to_place = res.migrated;
    while (to_place > 0) {
        auto r = alloc(0, Migrate::Movable);
        K2_ASSERT(r.has_value()); // guaranteed by feasibility check
        res.work += r->work;
        --to_place;
    }

    res.ok = true;
    res.work += workModel_.base;
    return res;
}

std::optional<unsigned>
BuddyAllocator::largestFreeOrder() const
{
    for (int order = kMaxOrder; order >= 0; --order) {
        if (!freeLists_[static_cast<unsigned>(order)].empty())
            return static_cast<unsigned>(order);
    }
    return std::nullopt;
}

void
BuddyAllocator::snapState(snap::Io &io)
{
    io.check(base_, "BuddyAllocator::base");
    io.check(npages_, "BuddyAllocator::npages");
    // meta_ goes into the image as raw bytes; any padding in PageMeta
    // would capture indeterminate garbage and break the fork-vs-cold
    // byte-identity contract.
    static_assert(sizeof(PageMeta) ==
                      sizeof(PageState) + sizeof(std::uint8_t) +
                          sizeof(Migrate),
                  "PageMeta must be padding-free for podVec");
    io.podVec(meta_);
    for (unsigned order = 0; order <= kMaxOrder; ++order) {
        // The bitmap iterates ascending, so the image is deterministic
        // (absolute head pfns, the same bytes the std::set free lists
        // produced).
        BlockSet &list = freeLists_[order];
        std::uint64_t n = io.count(list.size());
        if (io.restoring()) {
            list.clear();
            for (std::uint64_t i = 0; i < n; ++i) {
                Pfn pfn;
                io.pod(pfn);
                list.insert(rel(pfn) >> order);
            }
        } else {
            list.forEach([&](std::uint64_t idx) {
                Pfn v = base_ + (idx << order);
                io.pod(v);
            });
        }
    }
    io.pod(freePages_);
    io.pod(allocatedPages_);
    io.pod(allocCalls);
    io.pod(freeCalls);
    io.pod(failedAllocs);
}

void
BuddyAllocator::checkInvariants() const
{
    std::uint64_t free_count = 0;
    for (unsigned order = 0; order <= kMaxOrder; ++order) {
        freeLists_[order].forEach([&](std::uint64_t idx) {
            const Pfn head = base_ + (idx << order);
            const PageMeta &m = meta(head);
            K2_ASSERT(m.state == PageState::FreeHead);
            K2_ASSERT(m.order == order);
            K2_ASSERT((rel(head) & ((1ull << order) - 1)) == 0);
            free_count += 1ull << order;
            for (std::uint64_t i = 1; i < (1ull << order); ++i) {
                K2_ASSERT(meta_[rel(head) + i].state ==
                          PageState::FreeBody);
            }
        });
    }
    K2_ASSERT(free_count == freePages_);

    std::uint64_t alloc_count = 0;
    for (std::uint64_t i = 0; i < npages_; ++i) {
        if (meta_[i].state == PageState::AllocHead ||
            meta_[i].state == PageState::AllocBody) {
            ++alloc_count;
        }
    }
    K2_ASSERT(alloc_count == allocatedPages_);
}

} // namespace kern
} // namespace k2
