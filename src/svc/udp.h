/**
 * @file
 * A UDP socket stack with loopback delivery (the paper's network
 * service; exercised by the UDP-loopback benchmark of §9.2).
 *
 * Implements sockets, ephemeral/bound ports, datagram send/receive
 * with bounded per-socket receive buffers, and loopback delivery
 * through a modelled softirq. Costs: per-packet header processing,
 * per-byte checksum+copy at the core's memory bandwidth, and
 * socket-table state touches (shadowed service).
 */

#ifndef K2_SVC_UDP_H
#define K2_SVC_UDP_H

#include <cstdint>
#include <deque>
#include <span>
#include <memory>
#include <optional>
#include <vector>

#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "os/system.h"

namespace k2 {
namespace svc {

/** UDP result codes. */
enum class NetStatus
{
    Ok = 0,
    BadSocket,
    AddrInUse,
    NoBufs,
    WouldBlock,
    MsgTooBig,
    PortUnreachable,
};

const char *netStatusName(NetStatus s);

class UdpStack
{
  public:
    static constexpr std::size_t kSpinlockIdx = 3;
    static constexpr std::size_t kMaxDatagram = 65507;
    static constexpr std::size_t kDefaultRcvBuf = 256 * 1024;

    explicit UdpStack(os::SystemImage &sys, std::size_t max_sockets = 64);

    /** Create a socket; returns the socket id or -(NetStatus). */
    sim::Task<std::int64_t> socket(kern::Thread &t);

    /** Bind a socket to a port (0 picks an ephemeral port).
     *  @return The bound port, or -(NetStatus). */
    sim::Task<std::int64_t> bind(kern::Thread &t, int sock,
                                 std::uint16_t port);

    /**
     * Send a datagram with real payload to @p dst_port over loopback.
     * @return Bytes queued, or -(NetStatus).
     */
    sim::Task<std::int64_t> sendTo(kern::Thread &t, int sock,
                                   std::uint16_t dst_port,
                                   std::span<const std::uint8_t> data);

    /**
     * Send @p bytes of synthetic payload (workload-generator
     * convenience).
     */
    sim::Task<std::int64_t> sendTo(kern::Thread &t, int sock,
                                   std::uint16_t dst_port,
                                   std::uint64_t bytes);

    /**
     * Receive one datagram (blocking), copying its payload into
     * @p out (truncating if small). @return The datagram size in
     * bytes, or -(NetStatus).
     */
    sim::Task<std::int64_t> recvFrom(kern::Thread &t, int sock,
                                     std::span<std::uint8_t> out);

    /** Receive one datagram, discarding the payload. */
    sim::Task<std::int64_t> recvFrom(kern::Thread &t, int sock);

    /** Close and release a socket. */
    sim::Task<NetStatus> close(kern::Thread &t, int sock);

    /** @name Statistics. @{ */
    sim::Counter packetsSent;
    sim::Counter packetsDropped;
    sim::Counter bytesSent;
    sim::Counter socketsCreated;

    /** Register stack statistics under "<prefix>.*". */
    void registerMetrics(obs::MetricsRegistry &reg,
                         const std::string &prefix) const;
    /** @} */

    /** Capture/restore: socket table (ports, receive queues), the
     *  ephemeral-port cursor, and stats. */
    void snapState(snap::Io &io);

  private:
    struct Socket
    {
        bool used = false;
        std::uint16_t port = 0;
        std::deque<std::vector<std::uint8_t>> rxQueue;
        std::uint64_t rxBytes = 0;
        std::unique_ptr<sim::Event> readable;
    };

    sim::Task<void> deliver(int dst_sock,
                            std::vector<std::uint8_t> data);

    int findByPort(std::uint16_t port) const;

    os::SystemImage &sys_;
    std::vector<Socket> sockets_;
    std::uint16_t nextEphemeral_ = 32768;
    std::unique_ptr<os::SharedRegion> state_;
};

} // namespace svc
} // namespace k2

#endif // K2_SVC_UDP_H
