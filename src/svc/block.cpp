#include "svc/block.h"

#include <cstring>

#include "sim/log.h"
#include "soc/core.h"

namespace k2 {
namespace svc {

RamDisk::RamDisk(std::size_t block_bytes, std::uint64_t num_blocks,
                 std::uint64_t request_instr)
    : blockBytes_(block_bytes), numBlocks_(num_blocks),
      requestInstr_(request_instr), data_(block_bytes * num_blocks)
{}

sim::Duration
RamDisk::copyTime(const kern::Thread &t) const
{
    const double bw =
        const_cast<kern::Thread &>(t).core().spec().memBytesPerSec;
    return static_cast<sim::Duration>(
        static_cast<double>(blockBytes_) / bw * 1e12);
}

sim::Task<void>
RamDisk::read(kern::Thread &t, std::uint64_t block,
              std::span<std::uint8_t> out)
{
    K2_ASSERT(block < numBlocks_);
    K2_ASSERT(out.size() == blockBytes_);
    co_await t.exec(requestInstr_);
    co_await t.execTime(copyTime(t));
    std::memcpy(out.data(), &data_[block * blockBytes_], blockBytes_);
    reads.inc();
}

sim::Task<void>
RamDisk::write(kern::Thread &t, std::uint64_t block,
               std::span<const std::uint8_t> in)
{
    K2_ASSERT(block < numBlocks_);
    K2_ASSERT(in.size() == blockBytes_);
    co_await t.exec(requestInstr_);
    co_await t.execTime(copyTime(t));
    std::memcpy(&data_[block * blockBytes_], in.data(), blockBytes_);
    writes.inc();
}

} // namespace svc
} // namespace k2
