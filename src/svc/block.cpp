#include "svc/block.h"

#include <cstring>

#include "sim/log.h"
#include "soc/core.h"

namespace k2 {
namespace svc {

RamDisk::RamDisk(std::size_t block_bytes, std::uint64_t num_blocks,
                 std::uint64_t request_instr)
    : blockBytes_(block_bytes), numBlocks_(num_blocks),
      requestInstr_(request_instr), data_(block_bytes * num_blocks),
      dirty_(num_blocks, false)
{}

sim::Duration
RamDisk::copyTime(const kern::Thread &t) const
{
    const double bw =
        const_cast<kern::Thread &>(t).core().spec().memBytesPerSec;
    return static_cast<sim::Duration>(
        static_cast<double>(blockBytes_) / bw * 1e12);
}

sim::Task<void>
RamDisk::read(kern::Thread &t, std::uint64_t block,
              std::span<std::uint8_t> out)
{
    K2_ASSERT(block < numBlocks_);
    K2_ASSERT(out.size() == blockBytes_);
    co_await t.exec(requestInstr_);
    co_await t.execTime(copyTime(t));
    std::memcpy(out.data(), &data_[block * blockBytes_], blockBytes_);
    reads.inc();
}

sim::Task<void>
RamDisk::write(kern::Thread &t, std::uint64_t block,
               std::span<const std::uint8_t> in)
{
    K2_ASSERT(block < numBlocks_);
    K2_ASSERT(in.size() == blockBytes_);
    co_await t.exec(requestInstr_);
    co_await t.execTime(copyTime(t));
    std::memcpy(&data_[block * blockBytes_], in.data(), blockBytes_);
    if (!dirty_[block]) {
        dirty_[block] = true;
        ++dirtyCount_;
    }
    writes.inc();
}

void
RamDisk::snapState(snap::Io &io)
{
    io.check(blockBytes_, "RamDisk::blockBytes");
    io.check(numBlocks_, "RamDisk::numBlocks");
    io.pod(reads);
    io.pod(writes);

    if (io.capturing()) {
        io.count(dirtyCount_);
        // The bitmap scan yields ascending indices: deterministic
        // bytes for identical disk contents.
        for (std::uint64_t b = 0; b < numBlocks_; ++b) {
            if (!dirty_[b])
                continue;
            io.pod(b);
            io.bytes(&data_[b * blockBytes_], blockBytes_);
        }
    } else {
        const std::uint64_t n = io.count(0);
        // Write-only dirtying means the instance's dirty set is a
        // superset of the image's. Walk both ascending sets in step:
        // re-zero blocks dirtied only after the capture, reload the
        // captured ones.
        std::uint64_t imageBlock = numBlocks_; // sentinel: none left
        std::uint64_t taken = 0;
        if (taken < n)
            io.pod(imageBlock);
        for (std::uint64_t b = 0; b < numBlocks_; ++b) {
            if (!dirty_[b])
                continue;
            if (taken < n && b == imageBlock) {
                io.bytes(&data_[b * blockBytes_], blockBytes_);
                ++taken;
                imageBlock = numBlocks_;
                if (taken < n)
                    io.pod(imageBlock);
            } else {
                std::memset(&data_[b * blockBytes_], 0, blockBytes_);
                dirty_[b] = false;
            }
        }
        if (taken != n)
            K2_FATAL("RamDisk image holds %llu blocks not dirty in the "
                     "target",
                     static_cast<unsigned long long>(n - taken));
        dirtyCount_ = n;
    }
}

} // namespace svc
} // namespace k2
