#include "svc/udp.h"

#include <cstring>

#include "obs/metrics.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace svc {

namespace {

/** Work units for socket create/close. */
constexpr std::uint64_t kSocketWork = 900;
/** Work units of header processing per packet, each direction. */
constexpr std::uint64_t kPacketWork = 350;
/** Function pointers per stack entry (§5.4). */
constexpr std::uint64_t kNetPointers = 3;
/** Loopback "wire" latency (softirq scheduling). */
constexpr sim::Duration kLoopbackDelay = sim::usec(8);

/** Shared-state pages: 0 = socket/port table, 1-2 = sk_buff pools. */
constexpr std::uint64_t kTablePage = 0;
constexpr std::uint64_t kBufPage0 = 1;
constexpr std::uint64_t kBufPages = 2;

} // namespace

const char *
netStatusName(NetStatus s)
{
    switch (s) {
      case NetStatus::Ok:
        return "ok";
      case NetStatus::BadSocket:
        return "bad socket";
      case NetStatus::AddrInUse:
        return "address in use";
      case NetStatus::NoBufs:
        return "no buffer space";
      case NetStatus::WouldBlock:
        return "would block";
      case NetStatus::MsgTooBig:
        return "message too big";
      case NetStatus::PortUnreachable:
        return "port unreachable";
    }
    return "?";
}

UdpStack::UdpStack(os::SystemImage &sys, std::size_t max_sockets)
    : sys_(sys), sockets_(max_sockets)
{
    for (auto &s : sockets_)
        s.readable = std::make_unique<sim::Event>(sys.engine());
    state_ = sys_.createSharedRegion("udp-state",
                                     kBufPage0 + kBufPages);
}

sim::Task<std::int64_t>
UdpStack::socket(kern::Thread &t)
{
    co_await sys_.chargeCrossIsa(t.kernel(), t.core(), kNetPointers);
    co_await sys_.soc().spinlocks().acquire(kSpinlockIdx, t.core());
    co_await state_->touch(t.kernel(), t.core(), kTablePage,
                           os::Access::Write);
    co_await t.exec(kSocketWork);

    std::int64_t result = -static_cast<std::int64_t>(NetStatus::NoBufs);
    for (std::size_t i = 0; i < sockets_.size(); ++i) {
        if (!sockets_[i].used) {
            sockets_[i].used = true;
            sockets_[i].port = 0;
            sockets_[i].rxQueue.clear();
            sockets_[i].rxBytes = 0;
            sockets_[i].readable->reset();
            socketsCreated.inc();
            result = static_cast<std::int64_t>(i);
            break;
        }
    }
    sys_.soc().spinlocks().release(kSpinlockIdx);
    co_return result;
}

int
UdpStack::findByPort(std::uint16_t port) const
{
    for (std::size_t i = 0; i < sockets_.size(); ++i) {
        if (sockets_[i].used && sockets_[i].port == port)
            return static_cast<int>(i);
    }
    return -1;
}

sim::Task<std::int64_t>
UdpStack::bind(kern::Thread &t, int sock, std::uint16_t port)
{
    co_await sys_.chargeCrossIsa(t.kernel(), t.core(), 1);
    if (sock < 0 || static_cast<std::size_t>(sock) >= sockets_.size() ||
        !sockets_[static_cast<std::size_t>(sock)].used) {
        co_return -static_cast<std::int64_t>(NetStatus::BadSocket);
    }
    co_await sys_.soc().spinlocks().acquire(kSpinlockIdx, t.core());
    co_await state_->touch(t.kernel(), t.core(), kTablePage,
                           os::Access::Write);
    co_await t.exec(kPacketWork);

    std::int64_t result;
    if (port == 0) {
        while (findByPort(nextEphemeral_) >= 0)
            ++nextEphemeral_;
        port = nextEphemeral_++;
        if (nextEphemeral_ == 0)
            nextEphemeral_ = 32768;
    }
    if (findByPort(port) >= 0) {
        result = -static_cast<std::int64_t>(NetStatus::AddrInUse);
    } else {
        sockets_[static_cast<std::size_t>(sock)].port = port;
        result = static_cast<std::int64_t>(port);
    }
    sys_.soc().spinlocks().release(kSpinlockIdx);
    co_return result;
}

sim::Task<std::int64_t>
UdpStack::sendTo(kern::Thread &t, int sock, std::uint16_t dst_port,
                 std::uint64_t bytes)
{
    // Synthetic-payload convenience for workload generators.
    if (bytes > kMaxDatagram)
        co_return -static_cast<std::int64_t>(NetStatus::MsgTooBig);
    std::vector<std::uint8_t> data(bytes, 0xD6);
    co_return co_await sendTo(t, sock, dst_port,
                              std::span<const std::uint8_t>(data));
}

sim::Task<std::int64_t>
UdpStack::sendTo(kern::Thread &t, int sock, std::uint16_t dst_port,
                 std::span<const std::uint8_t> payload)
{
    const std::uint64_t bytes = payload.size();
    co_await sys_.chargeCrossIsa(t.kernel(), t.core(), kNetPointers);
    if (sock < 0 || static_cast<std::size_t>(sock) >= sockets_.size() ||
        !sockets_[static_cast<std::size_t>(sock)].used) {
        co_return -static_cast<std::int64_t>(NetStatus::BadSocket);
    }
    if (bytes > kMaxDatagram)
        co_return -static_cast<std::int64_t>(NetStatus::MsgTooBig);

    // Header processing + checksum/copy at memory bandwidth.
    co_await t.exec(kPacketWork);
    const double bw = t.core().spec().memBytesPerSec;
    co_await t.execTime(static_cast<sim::Duration>(
        static_cast<double>(bytes) / bw * 1e12));

    co_await sys_.soc().spinlocks().acquire(kSpinlockIdx, t.core());
    co_await state_->touch(t.kernel(), t.core(), kTablePage,
                           os::Access::Read);
    co_await state_->touch(t.kernel(), t.core(),
                           kBufPage0 + bytesSent.value() % kBufPages,
                           os::Access::Write);
    const int dst = findByPort(dst_port);
    std::int64_t result;
    if (dst < 0) {
        result = -static_cast<std::int64_t>(NetStatus::PortUnreachable);
    } else if (sockets_[static_cast<std::size_t>(dst)].rxBytes + bytes >
               kDefaultRcvBuf) {
        packetsDropped.inc();
        result = -static_cast<std::int64_t>(NetStatus::NoBufs);
    } else {
        packetsSent.inc();
        bytesSent.inc(bytes);
        // Softirq loopback delivery carries the real payload.
        sys_.engine().spawn(deliver(
            dst, std::vector<std::uint8_t>(payload.begin(),
                                           payload.end())));
        result = static_cast<std::int64_t>(bytes);
    }
    sys_.soc().spinlocks().release(kSpinlockIdx);
    co_return result;
}

sim::Task<void>
UdpStack::deliver(int dst_sock, std::vector<std::uint8_t> data)
{
    co_await sys_.engine().sleep(kLoopbackDelay);
    Socket &s = sockets_[static_cast<std::size_t>(dst_sock)];
    if (!s.used)
        co_return; // closed in flight
    s.rxBytes += data.size();
    s.rxQueue.push_back(std::move(data));
    s.readable->set();
}

sim::Task<std::int64_t>
UdpStack::recvFrom(kern::Thread &t, int sock)
{
    co_return co_await recvFrom(t, sock, std::span<std::uint8_t>{});
}

sim::Task<std::int64_t>
UdpStack::recvFrom(kern::Thread &t, int sock,
                   std::span<std::uint8_t> out)
{
    co_await sys_.chargeCrossIsa(t.kernel(), t.core(), kNetPointers);
    if (sock < 0 || static_cast<std::size_t>(sock) >= sockets_.size() ||
        !sockets_[static_cast<std::size_t>(sock)].used) {
        co_return -static_cast<std::int64_t>(NetStatus::BadSocket);
    }
    Socket &s = sockets_[static_cast<std::size_t>(sock)];
    while (s.rxQueue.empty()) {
        s.readable->reset();
        co_await t.wait(*s.readable);
        if (!s.used)
            co_return -static_cast<std::int64_t>(NetStatus::BadSocket);
    }

    co_await state_->touch(t.kernel(), t.core(), kTablePage,
                           os::Access::Read);
    co_await t.exec(kPacketWork);
    std::vector<std::uint8_t> data = std::move(s.rxQueue.front());
    s.rxQueue.pop_front();
    const std::uint64_t bytes = data.size();
    s.rxBytes -= bytes;
    if (!out.empty()) {
        std::memcpy(out.data(), data.data(),
                    std::min<std::size_t>(out.size(), data.size()));
    }
    // Copy out to the caller's buffer.
    const double bw = t.core().spec().memBytesPerSec;
    co_await t.execTime(static_cast<sim::Duration>(
        static_cast<double>(bytes) / bw * 1e12));
    co_return static_cast<std::int64_t>(bytes);
}

sim::Task<NetStatus>
UdpStack::close(kern::Thread &t, int sock)
{
    co_await sys_.chargeCrossIsa(t.kernel(), t.core(), 1);
    if (sock < 0 || static_cast<std::size_t>(sock) >= sockets_.size() ||
        !sockets_[static_cast<std::size_t>(sock)].used) {
        co_return NetStatus::BadSocket;
    }
    co_await sys_.soc().spinlocks().acquire(kSpinlockIdx, t.core());
    co_await state_->touch(t.kernel(), t.core(), kTablePage,
                           os::Access::Write);
    co_await t.exec(kSocketWork / 2);
    Socket &s = sockets_[static_cast<std::size_t>(sock)];
    s.used = false;
    s.port = 0;
    s.rxQueue.clear();
    s.rxBytes = 0;
    s.readable->set(); // wake any blocked receiver to fail cleanly
    sys_.soc().spinlocks().release(kSpinlockIdx);
    co_return NetStatus::Ok;
}

void
UdpStack::registerMetrics(obs::MetricsRegistry &reg,
                          const std::string &prefix) const
{
    reg.addCounter(prefix + ".packets_sent", packetsSent);
    reg.addCounter(prefix + ".packets_dropped", packetsDropped);
    reg.addCounter(prefix + ".bytes_sent", bytesSent);
    reg.addCounter(prefix + ".sockets_created", socketsCreated);
}

void
UdpStack::snapState(snap::Io &io)
{
    io.pod(nextEphemeral_);
    io.pod(packetsSent);
    io.pod(packetsDropped);
    io.pod(bytesSent);
    io.pod(socketsCreated);

    io.check(sockets_.size(), "UdpStack::sockets");
    for (Socket &s : sockets_) {
        io.pod(s.used);
        io.pod(s.port);
        io.pod(s.rxBytes);
        std::uint64_t n = io.count(s.rxQueue.size());
        if (io.restoring()) {
            s.rxQueue.clear();
            for (std::uint64_t i = 0; i < n; ++i) {
                std::vector<std::uint8_t> dgram;
                io.podVec(dgram);
                s.rxQueue.push_back(std::move(dgram));
            }
        } else {
            for (auto &dgram : s.rxQueue)
                io.podVec(dgram);
        }
        s.readable->snapState(io);
    }
}

} // namespace svc
} // namespace k2
