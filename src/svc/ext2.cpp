#include "svc/ext2.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "obs/metrics.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace svc {

namespace {

/** Kernel work units charged per metadata operation. */
constexpr std::uint64_t kOpWork = 260;
/** Per path component. */
constexpr std::uint64_t kLookupWork = 120;
/** Function pointers dereferenced per VFS operation (§5.4). */
constexpr std::uint64_t kVfsPointers = 3;

/** Shared-state page indices within the fs region. */
constexpr std::uint64_t kSbPage = 0;     // superblock + bitmaps
constexpr std::uint64_t kFdPage = 1;     // open-file table
constexpr std::uint64_t kInodePage0 = 2; // inode cache pages
constexpr std::uint64_t kInodePages = 4;

std::vector<std::string>
splitPath(const std::string &path)
{
    std::vector<std::string> parts;
    std::string cur;
    for (const char c : path) {
        if (c == '/') {
            if (!cur.empty()) {
                parts.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        parts.push_back(cur);
    return parts;
}

} // namespace

const char *
fsStatusName(FsStatus s)
{
    switch (s) {
      case FsStatus::Ok:
        return "ok";
      case FsStatus::NotFound:
        return "not found";
      case FsStatus::Exists:
        return "exists";
      case FsStatus::NoSpace:
        return "no space";
      case FsStatus::NotADirectory:
        return "not a directory";
      case FsStatus::IsADirectory:
        return "is a directory";
      case FsStatus::BadFd:
        return "bad fd";
      case FsStatus::TooLarge:
        return "too large";
      case FsStatus::NameTooLong:
        return "name too long";
      case FsStatus::NotEmpty:
        return "not empty";
    }
    return "?";
}

Ext2Fs::Scratch::Scratch(Ext2Fs &fs, bool zeroed) : fs_(fs)
{
    if (fs.scratchPool_.empty()) {
        buf_.assign(kBlockBytes, 0); // Fresh buffers start zeroed.
        return;
    }
    buf_ = std::move(fs.scratchPool_.back());
    fs.scratchPool_.pop_back();
    if (zeroed)
        std::fill(buf_.begin(), buf_.end(), 0);
}

Ext2Fs::Scratch::~Scratch()
{
    fs_.scratchPool_.push_back(std::move(buf_));
}

Ext2Fs::Ext2Fs(os::SystemImage &sys, BlockDevice &dev,
               std::uint32_t num_inodes)
    : sys_(sys), dev_(dev), numInodes_(num_inodes), fds_(64)
{
    if (dev_.blockBytes() != kBlockBytes)
        K2_FATAL("ext2 requires %zu-byte blocks, device has %zu",
                 kBlockBytes, dev_.blockBytes());
    state_ = sys_.createSharedRegion("ext2-state",
                                     kInodePage0 + kInodePages);
}

sim::Task<void>
Ext2Fs::touchMeta(kern::Thread &t, std::uint64_t page, os::Access rw)
{
    co_await state_->touch(t.kernel(), t.core(), page, rw);
}

sim::Task<void>
Ext2Fs::lock(kern::Thread &t)
{
    // The fs kernel lock is a mutex augmented with a hardware spinlock
    // bit (§5.3): the bit arbitrates across domains, but a contended
    // waiter *sleeps* between probes of it instead of busy-spinning.
    // A true spin would deadlock a single-core domain whenever the
    // holder parks inside the critical section (e.g. on a DSM fault
    // during a peer-domain outage): the spinner owns the only core and
    // the holder can never run to release. Each probe still charges
    // one bus access; the probe interval matches the hardware spin
    // poll, so the contended-acquire latency is unchanged.
    auto &soc = t.kernel().soc();
    co_await t.core().execTime(soc.costs().busAccess);
    while (!soc.spinlocks().tryAcquire(kSpinlockIdx)) {
        co_await t.sleep(soc.costs().spinPoll);
        co_await t.core().execTime(soc.costs().busAccess);
    }
    t.enterCritical();
}

void
Ext2Fs::unlock(kern::Thread &t)
{
    // Release is cheap; the acquire charged the bus accesses.
    t.kernel().soc().spinlocks().release(kSpinlockIdx);
    t.exitCritical();
}

sim::Task<FsStatus>
Ext2Fs::mkfs(kern::Thread &t)
{
    co_await lock(t);
    sb_ = Superblock{};
    sb_.totalBlocks = static_cast<std::uint32_t>(dev_.numBlocks());
    sb_.numInodes = numInodes_;
    sb_.inodeTableBlocks = static_cast<std::uint32_t>(
        (numInodes_ + kInodesPerBlock - 1) / kInodesPerBlock);
    sb_.dataStart = sb_.inodeTableStart + sb_.inodeTableBlocks;
    if (sb_.dataStart >= sb_.totalBlocks) {
        unlock(t);
        co_return FsStatus::NoSpace;
    }
    sb_.freeBlocks = sb_.totalBlocks - sb_.dataStart;
    sb_.freeInodes = numInodes_ - 2; // inode 0 reserved, 1 = root.

    // Zero the bitmaps and inode table.
    Scratch zero(*this, true);
    co_await dev_.write(t, 1, zero);
    co_await dev_.write(t, 2, zero);
    for (std::uint32_t b = 0; b < sb_.inodeTableBlocks; ++b)
        co_await dev_.write(t, sb_.inodeTableStart + b, zero);

    // Mark inodes 0 and 1 used in the inode bitmap.
    Scratch bm(*this, true);
    bm[0] = 0x3;
    co_await dev_.write(t, 1, bm);

    // Root directory inode.
    Inode root;
    root.mode = static_cast<std::uint32_t>(InodeMode::Dir);
    root.links = 1;
    co_await writeInode(t, sb_.rootInode, root);
    co_await writeSuperblock(t);

    for (auto &f : fds_)
        f = OpenFile{};
    formatted_ = true;
    co_await touchMeta(t, kSbPage, os::Access::Write);
    unlock(t);
    co_return FsStatus::Ok;
}

sim::Task<void>
Ext2Fs::writeSuperblock(kern::Thread &t)
{
    Scratch buf(*this, true);
    std::memcpy(buf.data(), &sb_, sizeof(sb_));
    co_await dev_.write(t, 0, buf);
}

sim::Task<std::optional<std::uint32_t>>
Ext2Fs::allocFromBitmap(kern::Thread &t, std::uint32_t bitmap_block,
                        std::uint32_t limit)
{
    Scratch bm(*this);
    co_await dev_.read(t, bitmap_block, bm);
    // First-fit scan from bit 0; skipping full (0xFF) bytes matters
    // because on a busy device most of the prefix is allocated.
    const std::uint32_t nbytes = (limit + 7) / 8;
    for (std::uint32_t byte = 0; byte < nbytes; ++byte) {
        if (bm[byte] == 0xFF)
            continue;
        const std::uint32_t i =
            byte * 8 + static_cast<std::uint32_t>(
                           std::countr_one(bm[byte]));
        if (i >= limit)
            break;
        bm[i / 8] |= (1u << (i % 8));
        co_await dev_.write(t, bitmap_block, bm);
        co_return i;
    }
    co_return std::nullopt;
}

sim::Task<void>
Ext2Fs::freeInBitmap(kern::Thread &t, std::uint32_t bitmap_block,
                     std::uint32_t idx)
{
    Scratch bm(*this);
    co_await dev_.read(t, bitmap_block, bm);
    K2_ASSERT(bm[idx / 8] & (1u << (idx % 8)));
    bm[idx / 8] &= static_cast<std::uint8_t>(~(1u << (idx % 8)));
    co_await dev_.write(t, bitmap_block, bm);
}

sim::Task<Ext2Fs::Inode>
Ext2Fs::readInode(kern::Thread &t, std::uint32_t ino)
{
    K2_ASSERT(ino < sb_.numInodes);
    co_await touchMeta(t, kInodePage0 + ino % kInodePages,
                       os::Access::Read);
    const std::uint32_t block =
        sb_.inodeTableStart +
        ino / static_cast<std::uint32_t>(kInodesPerBlock);
    Scratch buf(*this);
    co_await dev_.read(t, block, buf);
    Inode inode;
    std::memcpy(&inode, &buf[(ino % kInodesPerBlock) * kInodeBytes],
                sizeof(inode));
    co_return inode;
}

sim::Task<void>
Ext2Fs::writeInode(kern::Thread &t, std::uint32_t ino, const Inode &inode)
{
    K2_ASSERT(ino < sb_.numInodes);
    co_await touchMeta(t, kInodePage0 + ino % kInodePages,
                       os::Access::Write);
    const std::uint32_t block =
        sb_.inodeTableStart +
        ino / static_cast<std::uint32_t>(kInodesPerBlock);
    Scratch buf(*this);
    co_await dev_.read(t, block, buf);
    std::memcpy(&buf[(ino % kInodesPerBlock) * kInodeBytes], &inode,
                sizeof(inode));
    co_await dev_.write(t, block, buf);
}

sim::Task<std::optional<std::uint32_t>>
Ext2Fs::blockFor(kern::Thread &t, Inode &inode, std::uint64_t offset,
                 bool allocate)
{
    const std::uint64_t idx = offset / kBlockBytes;
    auto alloc_data_block =
        [&]() -> sim::Task<std::optional<std::uint32_t>> {
        if (sb_.freeBlocks == 0)
            co_return std::nullopt;
        auto rel = co_await allocFromBitmap(
            t, 2, sb_.totalBlocks - sb_.dataStart);
        if (!rel)
            co_return std::nullopt;
        --sb_.freeBlocks;
        co_await writeSuperblock(t);
        co_return sb_.dataStart + *rel;
    };

    if (idx < kDirect) {
        if (inode.direct[idx] == 0) {
            if (!allocate)
                co_return std::nullopt;
            auto blk = co_await alloc_data_block();
            if (!blk)
                co_return std::nullopt;
            inode.direct[idx] = *blk;
        }
        co_return inode.direct[idx];
    }

    const std::uint64_t ind_idx = idx - kDirect;
    if (ind_idx >= kIndirectEntries)
        co_return std::nullopt; // beyond max file size

    if (inode.indirect == 0) {
        if (!allocate)
            co_return std::nullopt;
        auto blk = co_await alloc_data_block();
        if (!blk)
            co_return std::nullopt;
        inode.indirect = *blk;
        Scratch zero(*this, true);
        co_await dev_.write(t, inode.indirect, zero);
    }

    Scratch ind(*this);
    co_await dev_.read(t, inode.indirect, ind);
    std::uint32_t entry = 0;
    std::memcpy(&entry, &ind[ind_idx * 4], 4);
    if (entry == 0) {
        if (!allocate)
            co_return std::nullopt;
        auto blk = co_await alloc_data_block();
        if (!blk)
            co_return std::nullopt;
        entry = *blk;
        std::memcpy(&ind[ind_idx * 4], &entry, 4);
        co_await dev_.write(t, inode.indirect, ind);
    }
    co_return entry;
}

sim::Task<void>
Ext2Fs::truncate(kern::Thread &t, Inode &inode)
{
    auto release = [&](std::uint32_t blk) -> sim::Task<void> {
        co_await freeInBitmap(t, 2, blk - sb_.dataStart);
        ++sb_.freeBlocks;
    };
    for (std::size_t i = 0; i < kDirect; ++i) {
        if (inode.direct[i]) {
            co_await release(inode.direct[i]);
            inode.direct[i] = 0;
        }
    }
    if (inode.indirect) {
        Scratch ind(*this);
        co_await dev_.read(t, inode.indirect, ind);
        for (std::size_t i = 0; i < kIndirectEntries; ++i) {
            std::uint32_t entry = 0;
            std::memcpy(&entry, &ind[i * 4], 4);
            if (entry)
                co_await release(entry);
        }
        co_await release(inode.indirect);
        inode.indirect = 0;
    }
    inode.size = 0;
    co_await writeSuperblock(t);
}

sim::Task<std::optional<std::uint32_t>>
Ext2Fs::dirLookup(kern::Thread &t, std::uint32_t dir_ino,
                  const std::string &name)
{
    Inode dir = co_await readInode(t, dir_ino);
    if (dir.mode != static_cast<std::uint32_t>(InodeMode::Dir))
        co_return std::nullopt;
    Scratch buf(*this);
    for (std::uint64_t off = 0; off < dir.size; off += kBlockBytes) {
        auto blk = co_await blockFor(t, dir, off, false);
        if (!blk)
            break;
        co_await dev_.read(t, *blk, buf);
        const std::uint64_t entries =
            std::min<std::uint64_t>(kBlockBytes,
                                    dir.size - off) / kDirEntryBytes;
        for (std::uint64_t e = 0; e < entries; ++e) {
            DirEntry ent;
            std::memcpy(&ent, &buf[e * kDirEntryBytes], sizeof(ent));
            if (ent.ino != 0 && name == ent.name)
                co_return ent.ino;
        }
    }
    co_return std::nullopt;
}

sim::Task<FsStatus>
Ext2Fs::dirInsert(kern::Thread &t, std::uint32_t dir_ino,
                  const std::string &name, std::uint32_t ino)
{
    if (name.size() > kNameMax)
        co_return FsStatus::NameTooLong;
    Inode dir = co_await readInode(t, dir_ino);
    Scratch buf(*this);

    // Reuse a hole if one exists.
    for (std::uint64_t off = 0; off < dir.size; off += kBlockBytes) {
        auto blk = co_await blockFor(t, dir, off, false);
        if (!blk)
            continue;
        co_await dev_.read(t, *blk, buf);
        const std::uint64_t entries =
            std::min<std::uint64_t>(kBlockBytes,
                                    dir.size - off) / kDirEntryBytes;
        for (std::uint64_t e = 0; e < entries; ++e) {
            DirEntry ent;
            std::memcpy(&ent, &buf[e * kDirEntryBytes], sizeof(ent));
            if (ent.ino == 0) {
                ent.ino = ino;
                std::memset(ent.name, 0, sizeof(ent.name));
                std::memcpy(ent.name, name.data(), name.size());
                std::memcpy(&buf[e * kDirEntryBytes], &ent, sizeof(ent));
                co_await dev_.write(t, *blk, buf);
                co_return FsStatus::Ok;
            }
        }
    }

    // Append a new entry.
    auto blk = co_await blockFor(t, dir, dir.size, true);
    if (!blk)
        co_return FsStatus::NoSpace;
    co_await dev_.read(t, *blk, buf);
    DirEntry ent;
    ent.ino = ino;
    std::memcpy(ent.name, name.data(), name.size());
    std::memcpy(&buf[dir.size % kBlockBytes], &ent, sizeof(ent));
    co_await dev_.write(t, *blk, buf);
    dir.size += kDirEntryBytes;
    co_await writeInode(t, dir_ino, dir);
    co_return FsStatus::Ok;
}

sim::Task<FsStatus>
Ext2Fs::dirRemove(kern::Thread &t, std::uint32_t dir_ino,
                  const std::string &name)
{
    Inode dir = co_await readInode(t, dir_ino);
    Scratch buf(*this);
    for (std::uint64_t off = 0; off < dir.size; off += kBlockBytes) {
        auto blk = co_await blockFor(t, dir, off, false);
        if (!blk)
            continue;
        co_await dev_.read(t, *blk, buf);
        const std::uint64_t entries =
            std::min<std::uint64_t>(kBlockBytes,
                                    dir.size - off) / kDirEntryBytes;
        for (std::uint64_t e = 0; e < entries; ++e) {
            DirEntry ent;
            std::memcpy(&ent, &buf[e * kDirEntryBytes], sizeof(ent));
            if (ent.ino != 0 && name == ent.name) {
                ent = DirEntry{};
                std::memcpy(&buf[e * kDirEntryBytes], &ent, sizeof(ent));
                co_await dev_.write(t, *blk, buf);
                co_return FsStatus::Ok;
            }
        }
    }
    co_return FsStatus::NotFound;
}

sim::Task<bool>
Ext2Fs::dirEmpty(kern::Thread &t, std::uint32_t dir_ino)
{
    Inode dir = co_await readInode(t, dir_ino);
    Scratch buf(*this);
    for (std::uint64_t off = 0; off < dir.size; off += kBlockBytes) {
        auto blk = co_await blockFor(t, dir, off, false);
        if (!blk)
            continue;
        co_await dev_.read(t, *blk, buf);
        const std::uint64_t entries =
            std::min<std::uint64_t>(kBlockBytes,
                                    dir.size - off) / kDirEntryBytes;
        for (std::uint64_t e = 0; e < entries; ++e) {
            DirEntry ent;
            std::memcpy(&ent, &buf[e * kDirEntryBytes], sizeof(ent));
            if (ent.ino != 0)
                co_return false;
        }
    }
    co_return true;
}

sim::Task<std::optional<Ext2Fs::PathLoc>>
Ext2Fs::resolveParent(kern::Thread &t, const std::string &path)
{
    const auto parts = splitPath(path);
    if (parts.empty())
        co_return std::nullopt;
    std::uint32_t cur = sb_.rootInode;
    for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
        co_await t.exec(kLookupWork);
        auto next = co_await dirLookup(t, cur, parts[i]);
        if (!next)
            co_return std::nullopt;
        cur = *next;
    }
    co_return PathLoc{cur, parts.back()};
}

sim::Task<std::int64_t>
Ext2Fs::create(kern::Thread &t, const std::string &path)
{
    K2_ASSERT(formatted_);
    opsCreate.inc();
    co_await sys_.chargeCrossIsa(t.kernel(), t.core(), kVfsPointers);
    co_await t.exec(kOpWork);
    co_await lock(t);
    co_await touchMeta(t, kSbPage, os::Access::Write);

    auto loc = co_await resolveParent(t, path);
    std::int64_t result;
    if (!loc) {
        result = -static_cast<std::int64_t>(FsStatus::NotFound);
    } else if (co_await dirLookup(t, loc->parent, loc->leaf)) {
        result = -static_cast<std::int64_t>(FsStatus::Exists);
    } else {
        auto ino = co_await allocFromBitmap(t, 1, sb_.numInodes);
        if (!ino) {
            result = -static_cast<std::int64_t>(FsStatus::NoSpace);
        } else {
            --sb_.freeInodes;
            Inode inode;
            inode.mode = static_cast<std::uint32_t>(InodeMode::File);
            inode.links = 1;
            co_await writeInode(t, *ino, inode);
            const FsStatus ins =
                co_await dirInsert(t, loc->parent, loc->leaf, *ino);
            if (ins != FsStatus::Ok) {
                result = -static_cast<std::int64_t>(ins);
            } else {
                co_await writeSuperblock(t);
                // Allocate an fd.
                co_await touchMeta(t, kFdPage, os::Access::Write);
                result = -static_cast<std::int64_t>(FsStatus::NoSpace);
                for (std::size_t fd = 0; fd < fds_.size(); ++fd) {
                    if (!fds_[fd].used) {
                        fds_[fd] = OpenFile{*ino, 0, true};
                        result = static_cast<std::int64_t>(fd);
                        break;
                    }
                }
            }
        }
    }
    unlock(t);
    co_return result;
}

sim::Task<std::int64_t>
Ext2Fs::open(kern::Thread &t, const std::string &path)
{
    K2_ASSERT(formatted_);
    co_await sys_.chargeCrossIsa(t.kernel(), t.core(), kVfsPointers);
    co_await t.exec(kOpWork);
    co_await lock(t);
    co_await touchMeta(t, kSbPage, os::Access::Read);

    std::int64_t result = -static_cast<std::int64_t>(FsStatus::NotFound);
    auto loc = co_await resolveParent(t, path);
    if (loc) {
        auto ino = co_await dirLookup(t, loc->parent, loc->leaf);
        if (ino) {
            co_await touchMeta(t, kFdPage, os::Access::Write);
            result = -static_cast<std::int64_t>(FsStatus::NoSpace);
            for (std::size_t fd = 0; fd < fds_.size(); ++fd) {
                if (!fds_[fd].used) {
                    fds_[fd] = OpenFile{*ino, 0, true};
                    result = static_cast<std::int64_t>(fd);
                    break;
                }
            }
        }
    }
    unlock(t);
    co_return result;
}

sim::Task<std::int64_t>
Ext2Fs::write(kern::Thread &t, int fd, std::span<const std::uint8_t> data)
{
    opsWrite.inc();
    co_await sys_.chargeCrossIsa(t.kernel(), t.core(), kVfsPointers);
    co_await t.exec(kOpWork);
    if (fd < 0 || static_cast<std::size_t>(fd) >= fds_.size() ||
        !fds_[static_cast<std::size_t>(fd)].used) {
        co_return -static_cast<std::int64_t>(FsStatus::BadFd);
    }
    co_await lock(t);
    OpenFile &of = fds_[static_cast<std::size_t>(fd)];
    co_await touchMeta(t, kFdPage, os::Access::Read);

    Inode inode = co_await readInode(t, of.ino);
    std::int64_t written = 0;
    Scratch buf(*this);
    std::int64_t result = 0;

    while (written < static_cast<std::int64_t>(data.size())) {
        const std::uint64_t off = of.offset;
        auto blk = co_await blockFor(t, inode, off, true);
        if (!blk) {
            result = written ? written
                             : -static_cast<std::int64_t>(
                                   FsStatus::NoSpace);
            break;
        }
        const std::size_t in_block = off % kBlockBytes;
        const std::size_t n = std::min<std::size_t>(
            kBlockBytes - in_block, data.size() - written);
        if (n < kBlockBytes) {
            // Read-modify-write for partial blocks.
            co_await dev_.read(t, *blk, buf);
        }
        std::memcpy(&buf[in_block], data.data() + written, n);
        co_await dev_.write(t, *blk, buf);
        of.offset += n;
        written += static_cast<std::int64_t>(n);
        inode.size = std::max<std::uint32_t>(
            inode.size, static_cast<std::uint32_t>(of.offset));
    }
    if (result == 0)
        result = written;
    co_await writeInode(t, of.ino, inode);
    unlock(t);
    co_return result;
}

sim::Task<std::int64_t>
Ext2Fs::read(kern::Thread &t, int fd, std::span<std::uint8_t> out)
{
    opsRead.inc();
    co_await sys_.chargeCrossIsa(t.kernel(), t.core(), kVfsPointers);
    co_await t.exec(kOpWork);
    if (fd < 0 || static_cast<std::size_t>(fd) >= fds_.size() ||
        !fds_[static_cast<std::size_t>(fd)].used) {
        co_return -static_cast<std::int64_t>(FsStatus::BadFd);
    }
    co_await lock(t);
    OpenFile &of = fds_[static_cast<std::size_t>(fd)];
    co_await touchMeta(t, kFdPage, os::Access::Read);

    Inode inode = co_await readInode(t, of.ino);
    std::int64_t got = 0;
    Scratch buf(*this);
    while (got < static_cast<std::int64_t>(out.size()) &&
           of.offset < inode.size) {
        auto blk = co_await blockFor(t, inode, of.offset, false);
        const std::size_t in_block = of.offset % kBlockBytes;
        const std::size_t n = std::min<std::size_t>(
            {kBlockBytes - in_block,
             out.size() - static_cast<std::size_t>(got),
             inode.size - of.offset});
        if (blk) {
            co_await dev_.read(t, *blk, buf);
            std::memcpy(out.data() + got, &buf[in_block], n);
        } else {
            std::memset(out.data() + got, 0, n); // hole
        }
        of.offset += n;
        got += static_cast<std::int64_t>(n);
    }
    unlock(t);
    co_return got;
}

sim::Task<FsStatus>
Ext2Fs::seek(kern::Thread &t, int fd, std::uint64_t offset)
{
    co_await t.exec(kOpWork / 4);
    if (fd < 0 || static_cast<std::size_t>(fd) >= fds_.size() ||
        !fds_[static_cast<std::size_t>(fd)].used) {
        co_return FsStatus::BadFd;
    }
    fds_[static_cast<std::size_t>(fd)].offset = offset;
    co_return FsStatus::Ok;
}

sim::Task<FsStatus>
Ext2Fs::close(kern::Thread &t, int fd)
{
    co_await sys_.chargeCrossIsa(t.kernel(), t.core(), 1);
    co_await t.exec(kOpWork / 2);
    if (fd < 0 || static_cast<std::size_t>(fd) >= fds_.size() ||
        !fds_[static_cast<std::size_t>(fd)].used) {
        co_return FsStatus::BadFd;
    }
    co_await touchMeta(t, kFdPage, os::Access::Write);
    fds_[static_cast<std::size_t>(fd)] = OpenFile{};
    co_return FsStatus::Ok;
}

sim::Task<FsStatus>
Ext2Fs::mkdir(kern::Thread &t, const std::string &path)
{
    co_await sys_.chargeCrossIsa(t.kernel(), t.core(), kVfsPointers);
    co_await t.exec(kOpWork);
    co_await lock(t);
    co_await touchMeta(t, kSbPage, os::Access::Write);

    FsStatus result = FsStatus::Ok;
    auto loc = co_await resolveParent(t, path);
    if (!loc) {
        result = FsStatus::NotFound;
    } else if (co_await dirLookup(t, loc->parent, loc->leaf)) {
        result = FsStatus::Exists;
    } else {
        auto ino = co_await allocFromBitmap(t, 1, sb_.numInodes);
        if (!ino) {
            result = FsStatus::NoSpace;
        } else {
            --sb_.freeInodes;
            Inode inode;
            inode.mode = static_cast<std::uint32_t>(InodeMode::Dir);
            inode.links = 1;
            co_await writeInode(t, *ino, inode);
            result = co_await dirInsert(t, loc->parent, loc->leaf, *ino);
            co_await writeSuperblock(t);
        }
    }
    unlock(t);
    co_return result;
}

sim::Task<FsStatus>
Ext2Fs::unlink(kern::Thread &t, const std::string &path)
{
    opsUnlink.inc();
    co_await sys_.chargeCrossIsa(t.kernel(), t.core(), kVfsPointers);
    co_await t.exec(kOpWork);
    co_await lock(t);
    co_await touchMeta(t, kSbPage, os::Access::Write);

    FsStatus result = FsStatus::Ok;
    auto loc = co_await resolveParent(t, path);
    std::optional<std::uint32_t> ino;
    if (!loc || !(ino = co_await dirLookup(t, loc->parent, loc->leaf))) {
        result = FsStatus::NotFound;
    } else {
        Inode inode = co_await readInode(t, *ino);
        if (inode.mode == static_cast<std::uint32_t>(InodeMode::Dir) &&
            !(co_await dirEmpty(t, *ino))) {
            result = FsStatus::NotEmpty;
        } else {
            co_await truncate(t, inode);
            inode = Inode{};
            co_await writeInode(t, *ino, inode);
            co_await freeInBitmap(t, 1, *ino);
            ++sb_.freeInodes;
            co_await writeSuperblock(t);
            result = co_await dirRemove(t, loc->parent, loc->leaf);
        }
    }
    unlock(t);
    co_return result;
}

sim::Task<std::optional<Ext2Fs::Stat>>
Ext2Fs::stat(kern::Thread &t, const std::string &path)
{
    co_await sys_.chargeCrossIsa(t.kernel(), t.core(), 1);
    co_await t.exec(kOpWork / 2);
    co_await lock(t);
    co_await touchMeta(t, kSbPage, os::Access::Read);

    std::optional<Stat> result;
    if (path == "/") {
        Inode inode = co_await readInode(t, sb_.rootInode);
        result = Stat{sb_.rootInode, true, inode.size};
    } else {
        auto loc = co_await resolveParent(t, path);
        std::optional<std::uint32_t> ino;
        if (loc && (ino = co_await dirLookup(t, loc->parent, loc->leaf))) {
            Inode inode = co_await readInode(t, *ino);
            result = Stat{
                *ino,
                inode.mode ==
                    static_cast<std::uint32_t>(InodeMode::Dir),
                inode.size};
        }
    }
    unlock(t);
    co_return result;
}

sim::Task<std::vector<std::string>>
Ext2Fs::readdir(kern::Thread &t, const std::string &path)
{
    co_await sys_.chargeCrossIsa(t.kernel(), t.core(), 1);
    co_await t.exec(kOpWork);
    co_await lock(t);

    std::vector<std::string> names;
    std::uint32_t dir_ino = sb_.rootInode;
    bool found = true;
    if (path != "/" && !splitPath(path).empty()) {
        auto loc = co_await resolveParent(t, path);
        std::optional<std::uint32_t> ino;
        if (loc && (ino = co_await dirLookup(t, loc->parent, loc->leaf)))
            dir_ino = *ino;
        else
            found = false;
    }
    if (found) {
        Inode dir = co_await readInode(t, dir_ino);
        Scratch buf(*this);
        for (std::uint64_t off = 0; off < dir.size; off += kBlockBytes) {
            auto blk = co_await blockFor(t, dir, off, false);
            if (!blk)
                continue;
            co_await dev_.read(t, *blk, buf);
            const std::uint64_t entries =
                std::min<std::uint64_t>(kBlockBytes, dir.size - off) /
                kDirEntryBytes;
            for (std::uint64_t e = 0; e < entries; ++e) {
                DirEntry ent;
                std::memcpy(&ent, &buf[e * kDirEntryBytes], sizeof(ent));
                if (ent.ino != 0)
                    names.emplace_back(ent.name);
            }
        }
    }
    unlock(t);
    co_return names;
}

void
Ext2Fs::registerMetrics(obs::MetricsRegistry &reg,
                        const std::string &prefix) const
{
    reg.addCounter(prefix + ".ops_create", opsCreate);
    reg.addCounter(prefix + ".ops_write", opsWrite);
    reg.addCounter(prefix + ".ops_read", opsRead);
    reg.addCounter(prefix + ".ops_unlink", opsUnlink);
    reg.addGauge(prefix + ".free_blocks", [this]() {
        return static_cast<double>(freeBlocks());
    });
    reg.addGauge(prefix + ".free_inodes", [this]() {
        return static_cast<double>(freeInodes());
    });
}

void
Ext2Fs::snapState(snap::Io &io)
{
    io.check(numInodes_, "Ext2Fs::numInodes");
    io.pod(sb_);
    io.pod(formatted_);
    io.pod(opsCreate);
    io.pod(opsWrite);
    io.pod(opsRead);
    io.pod(opsUnlink);

    // Open-file table. Field-wise: OpenFile has interior padding.
    io.check(fds_.size(), "Ext2Fs::fds");
    for (OpenFile &f : fds_) {
        io.pod(f.ino);
        io.pod(f.offset);
        io.pod(f.used);
    }
}

} // namespace svc
} // namespace k2
