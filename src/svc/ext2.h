/**
 * @file
 * A real (simplified) ext2-style filesystem over a BlockDevice.
 *
 * On-disk layout (4 KB blocks):
 *   block 0              superblock
 *   block 1              inode bitmap
 *   block 2              data-block bitmap
 *   blocks 3..3+T-1      inode table (128-byte inodes, 32 per block)
 *   blocks 3+T..         data blocks
 *
 * Inodes address 12 direct blocks plus one single-indirect block
 * (1024 entries), i.e. files up to ~4.2 MB. Directories store fixed
 * 64-byte entries (inode number + name) in their data blocks; paths
 * are resolved component by component from the root directory.
 *
 * As a *shadowed* OS service (paper §5.3 step 4), the filesystem's
 * mutable kernel state -- superblock, bitmaps, inode cache, and the
 * open-file table -- lives in a SharedRegion. Under K2 both kernels
 * call the same Ext2Fs object and the DSM keeps that state coherent;
 * its lock is augmented with a hardware spinlock for inter-domain
 * mutual exclusion.
 */

#ifndef K2_SVC_EXT2_H
#define K2_SVC_EXT2_H

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/stats.h"
#include "sim/task.h"
#include "os/system.h"
#include "svc/block.h"

namespace k2 {
namespace svc {

/** Result codes for filesystem operations. */
enum class FsStatus
{
    Ok = 0,
    NotFound,
    Exists,
    NoSpace,
    NotADirectory,
    IsADirectory,
    BadFd,
    TooLarge,
    NameTooLong,
    NotEmpty,
};

const char *fsStatusName(FsStatus s);

class Ext2Fs
{
  public:
    static constexpr std::size_t kBlockBytes = 4096;
    static constexpr std::size_t kInodeBytes = 128;
    static constexpr std::size_t kInodesPerBlock =
        kBlockBytes / kInodeBytes;
    static constexpr std::size_t kDirect = 12;
    static constexpr std::size_t kIndirectEntries =
        kBlockBytes / sizeof(std::uint32_t);
    static constexpr std::size_t kNameMax = 59;
    static constexpr std::size_t kDirEntryBytes = 64;
    /** Hardware spinlock index guarding the fs shared state. */
    static constexpr std::size_t kSpinlockIdx = 2;

    /**
     * @param sys The system image (provides the shared region and the
     *        cross-ISA dispatch accounting).
     * @param dev Backing block device; blockBytes() must equal
     *        kBlockBytes.
     * @param num_inodes Number of inodes to provision at mkfs.
     */
    Ext2Fs(os::SystemImage &sys, BlockDevice &dev,
           std::uint32_t num_inodes = 1024);

    /** Format the device. Must be called (from a thread) before use. */
    sim::Task<FsStatus> mkfs(kern::Thread &t);

    /** @name File operations. @{ */

    /** Create (exclusively) and open a file; returns an fd. */
    sim::Task<std::int64_t> create(kern::Thread &t,
                                   const std::string &path);

    /** Open an existing file; returns an fd. */
    sim::Task<std::int64_t> open(kern::Thread &t,
                                 const std::string &path);

    /** Append/overwrite at the fd's offset. Returns bytes written or
     *  -(FsStatus). */
    sim::Task<std::int64_t> write(kern::Thread &t, int fd,
                                  std::span<const std::uint8_t> data);

    /** Read from the fd's offset. Returns bytes read (0 at EOF). */
    sim::Task<std::int64_t> read(kern::Thread &t, int fd,
                                 std::span<std::uint8_t> out);

    /** Reposition an fd. */
    sim::Task<FsStatus> seek(kern::Thread &t, int fd,
                             std::uint64_t offset);

    sim::Task<FsStatus> close(kern::Thread &t, int fd);

    /** @} */

    /** @name Namespace operations. @{ */
    sim::Task<FsStatus> mkdir(kern::Thread &t, const std::string &path);
    sim::Task<FsStatus> unlink(kern::Thread &t, const std::string &path);

    struct Stat
    {
        std::uint32_t inode;
        bool isDir;
        std::uint64_t size;
    };

    sim::Task<std::optional<Stat>> stat(kern::Thread &t,
                                        const std::string &path);

    /** List the names in a directory. */
    sim::Task<std::vector<std::string>> readdir(kern::Thread &t,
                                                const std::string &path);
    /** @} */

    /** Free data blocks remaining. */
    std::uint32_t freeBlocks() const { return sb_.freeBlocks; }
    std::uint32_t freeInodes() const { return sb_.freeInodes; }

    /** @name Statistics. @{ */
    sim::Counter opsCreate;
    sim::Counter opsWrite;
    sim::Counter opsRead;
    sim::Counter opsUnlink;

    /** Register filesystem statistics under "<prefix>.*". */
    void registerMetrics(obs::MetricsRegistry &reg,
                         const std::string &prefix) const;
    /** @} */

    /** Capture/restore: superblock cache, open-file table, stats.
     *  (On-disk state is captured by the backing device.) */
    void snapState(snap::Io &io);

  private:
    struct Superblock
    {
        std::uint32_t magic = 0xE2F5B10C;
        std::uint32_t totalBlocks = 0;
        std::uint32_t numInodes = 0;
        std::uint32_t inodeTableStart = 3;
        std::uint32_t inodeTableBlocks = 0;
        std::uint32_t dataStart = 0;
        std::uint32_t freeBlocks = 0;
        std::uint32_t freeInodes = 0;
        std::uint32_t rootInode = 1;
    };

    enum class InodeMode : std::uint32_t
    {
        Free = 0,
        File = 1,
        Dir = 2,
    };

    struct Inode
    {
        std::uint32_t mode = 0;
        std::uint32_t size = 0;
        std::uint32_t links = 0;
        std::uint32_t direct[kDirect] = {};
        std::uint32_t indirect = 0;
        std::uint8_t pad[kInodeBytes - 16 * sizeof(std::uint32_t)] = {};
    };
    static_assert(sizeof(Inode) == kInodeBytes);

    struct DirEntry
    {
        std::uint32_t ino = 0;
        char name[kDirEntryBytes - sizeof(std::uint32_t)] = {};
    };
    static_assert(sizeof(DirEntry) == kDirEntryBytes);

    struct OpenFile
    {
        std::uint32_t ino = 0;
        std::uint64_t offset = 0;
        bool used = false;
    };

    /**
     * A borrowed block-sized buffer, recycled through scratchPool_.
     *
     * Every helper used to construct a fresh std::vector per call,
     * value-initialising 4 KB each time; with one device op per
     * simulated block that memset + allocator round trip dominated
     * host time in block-heavy sweeps. Buffers come back with stale
     * contents -- callers that rely on zeroes must say so; everyone
     * else fully overwrites the buffer (device read or block-sized
     * memcpy) before reading it.
     */
    class Scratch
    {
      public:
        explicit Scratch(Ext2Fs &fs, bool zeroed = false);
        ~Scratch();
        Scratch(const Scratch &) = delete;
        Scratch &operator=(const Scratch &) = delete;

        std::uint8_t *data() { return buf_.data(); }
        std::uint8_t &operator[](std::size_t i) { return buf_[i]; }
        operator std::span<std::uint8_t>() { return buf_; }
        operator std::span<const std::uint8_t>() const { return buf_; }

      private:
        Ext2Fs &fs_;
        std::vector<std::uint8_t> buf_;
    };

    /** Charge a state touch + kernel work for a metadata operation. */
    sim::Task<void> touchMeta(kern::Thread &t, std::uint64_t page,
                              os::Access rw);
    sim::Task<void> lock(kern::Thread &t);
    void unlock(kern::Thread &t);

    /** @name Bitmap and table helpers (IO via the device). @{ */
    sim::Task<std::optional<std::uint32_t>> allocFromBitmap(
        kern::Thread &t, std::uint32_t bitmap_block, std::uint32_t limit);
    sim::Task<void> freeInBitmap(kern::Thread &t,
                                 std::uint32_t bitmap_block,
                                 std::uint32_t idx);
    sim::Task<Inode> readInode(kern::Thread &t, std::uint32_t ino);
    sim::Task<void> writeInode(kern::Thread &t, std::uint32_t ino,
                               const Inode &inode);
    sim::Task<void> writeSuperblock(kern::Thread &t);
    /** @} */

    /** Map a file byte offset to its data block, allocating if asked. */
    sim::Task<std::optional<std::uint32_t>> blockFor(kern::Thread &t,
                                                     Inode &inode,
                                                     std::uint64_t offset,
                                                     bool allocate);

    /** Release all blocks of an inode. */
    sim::Task<void> truncate(kern::Thread &t, Inode &inode);

    /** Resolve a path to (parent inode, leaf name). */
    struct PathLoc
    {
        std::uint32_t parent;
        std::string leaf;
    };
    sim::Task<std::optional<PathLoc>> resolveParent(
        kern::Thread &t, const std::string &path);

    /** Look up a name in a directory; returns the inode number. */
    sim::Task<std::optional<std::uint32_t>> dirLookup(
        kern::Thread &t, std::uint32_t dir_ino, const std::string &name);

    /** Insert/remove a directory entry. */
    sim::Task<FsStatus> dirInsert(kern::Thread &t, std::uint32_t dir_ino,
                                  const std::string &name,
                                  std::uint32_t ino);
    sim::Task<FsStatus> dirRemove(kern::Thread &t, std::uint32_t dir_ino,
                                  const std::string &name);
    sim::Task<bool> dirEmpty(kern::Thread &t, std::uint32_t dir_ino);

    os::SystemImage &sys_;
    BlockDevice &dev_;
    std::uint32_t numInodes_;
    Superblock sb_;
    bool formatted_ = false;
    std::unique_ptr<os::SharedRegion> state_;
    std::vector<OpenFile> fds_;
    /** Scratch buffer pool (host-side only; never snapshotted). */
    std::vector<std::vector<std::uint8_t>> scratchPool_;
};

} // namespace svc
} // namespace k2

#endif // K2_SVC_EXT2_H
