#include "svc/dma_driver.h"

#include "obs/metrics.h"
#include "sim/log.h"
#include "snap/io.h"
#include "soc/irq.h"

namespace k2 {
namespace svc {

namespace {

/**
 * Driver work units per request: dma_map-style cache maintenance on
 * source and destination buffers, descriptor setup, and resource
 * lookup. Calibrated so 4 KB transfers are CPU-bound on the strong
 * core at ~37.8 MB/s (the Table 6 Linux row) while large transfers are
 * engine-bound at ~40.5 MB/s.
 */
constexpr std::uint64_t kRequestWork = 2600;
/** Work units in the completion handler (unmap, resource free). */
constexpr std::uint64_t kCompleteWork = 800;
/** Function pointers dereferenced per driver call (§5.4). */
constexpr std::uint64_t kDriverPointers = 2;
/** Device-register writes to program one transfer. */
constexpr std::uint64_t kProgramRegs = 6;

/** Shared-state pages: 0 = channel table, 1 = request queue/waitq. */
constexpr std::uint64_t kChanPage = 0;
constexpr std::uint64_t kWaitPage = 1;

} // namespace

DmaDriver::DmaDriver(os::SystemImage &sys, std::size_t channels)
    : sys_(sys), channels_(channels)
{
    K2_ASSERT(channels <= sys.soc().dma().numChannels());
    for (auto &c : channels_)
        c.done = std::make_unique<sim::Event>(sys.engine());
    state_ = sys_.createSharedRegion("dma-state", 2);
}

void
DmaDriver::attachKernel(kern::Kernel &kern)
{
    kern.registerIrq(soc::kIrqDma,
                     [this, &kern](soc::Core &core) {
                         return completionIsr(kern, core);
                     });
}

sim::Task<void>
DmaDriver::transfer(kern::Thread &t, std::uint64_t bytes)
{
    const sim::Time start = sys_.engine().now();
    auto &soc = sys_.soc();

    co_await sys_.chargeCrossIsa(t.kernel(), t.core(), kDriverPointers);

    // 1. Clear the destination region (CPU work at the core's memory
    //    bandwidth).
    const double bw = t.core().spec().memBytesPerSec;
    co_await t.execTime(static_cast<sim::Duration>(
        static_cast<double>(bytes) / bw * 1e12));

    // 2. Find a free channel in the shared channel table.
    co_await soc.spinlocks().acquire(kSpinlockIdx, t.core());
    co_await state_->touch(t.kernel(), t.core(), kChanPage,
                           os::Access::Write);
    co_await t.kernel().chargeKernelWork(t, kRequestWork);
    std::size_t chan = channels_.size();
    while (true) {
        for (std::size_t i = 0; i < channels_.size(); ++i) {
            if (!channels_[i].busy) {
                chan = i;
                break;
            }
        }
        if (chan != channels_.size())
            break;
        // All channels busy: drop the lock and retry after a bit.
        soc.spinlocks().release(kSpinlockIdx);
        co_await t.sleep(sim::usec(100));
        co_await soc.spinlocks().acquire(kSpinlockIdx, t.core());
    }
    channels_[chan].busy = true;
    channels_[chan].bytes = bytes;
    channels_[chan].done->reset();
    soc.spinlocks().release(kSpinlockIdx);

    // 3. Program the engine and start the transfer.
    co_await t.execTime(soc.costs().busAccess * kProgramRegs);
    soc.dma().program(chan, bytes);

    // 4. Sleep until the completion ISR signals us. With recovery
    //    armed, don't trust the interrupt: if the transfer overstays
    //    its expected engine time, poll the status register directly
    //    (a lost completion IRQ leaves the status bit latched).
    if (!recovery_) {
        co_await t.wait(*channels_[chan].done);
    } else {
        const sim::Duration expect = soc.dma().transferTime(bytes);
        // Generous first deadline: the engine is FIFO across channels,
        // so queueing behind other transfers is normal.
        sim::Duration patience = expect * 4 + sim::usec(500);
        sim::Event *done = channels_[chan].done.get();
        while (channels_[chan].busy) {
            bool timer_fired = false;
            sim::EventId timer = sys_.engine().after(
                patience, [done, &timer_fired]() {
                    timer_fired = true;
                    done->pulse();
                });
            co_await t.wait(*done);
            sys_.engine().cancel(timer);
            if (!channels_[chan].busy)
                break;
            if (!timer_fired)
                continue; // Unrelated wake; keep waiting.
            irqPolls.inc();
            co_await harvest(t.kernel(), t.core());
            patience = expect * 2 + sim::usec(500);
        }
    }

    transfers.inc();
    bytesMoved.inc(bytes);
    transferUs.sample(sim::toUsec(sys_.engine().now() - start));
}

sim::Task<void>
DmaDriver::completionIsr(kern::Kernel &kern, soc::Core &core)
{
    co_await harvest(kern, core);
}

/**
 * Read-and-clear the status (and, with recovery armed, error) register
 * and complete or re-program the finished channels. Shared between the
 * completion ISR and the recovery-mode timeout poll; the read is
 * destructive, so whoever reads a channel's bit must fully process it.
 */
sim::Task<void>
DmaDriver::harvest(kern::Kernel &kern, soc::Core &core)
{
    auto &soc = sys_.soc();
    // Read-and-clear the engine's status register. A spurious
    // delivery (pending latched while masked, §7) reads zero and
    // returns immediately.
    co_await core.execTime(soc.costs().busAccess);
    const std::uint64_t status = soc.dma().readStatus();
    if (status == 0)
        co_return;
    const std::uint64_t errors = recovery_ ? soc.dma().readErrors() : 0;

    irqsHandled.inc();
    co_await sys_.chargeCrossIsa(kern, core, kDriverPointers);
    co_await state_->touch(kern, core, kChanPage, os::Access::Write);
    co_await state_->touch(kern, core, kWaitPage, os::Access::Write);

    for (std::size_t i = 0; i < channels_.size(); ++i) {
        if (!(status & (1ull << i)))
            continue;
        K2_ASSERT(channels_[i].busy);
        if (errors & (1ull << i)) {
            // The transfer finished but the data is bad: re-program
            // the channel and keep the waiter asleep.
            transferErrors.inc();
            co_await core.execTime(soc.costs().busAccess * kProgramRegs);
            soc.dma().program(i, channels_[i].bytes);
            continue;
        }
        co_await core.execTime(kern.kernelWorkTime(core, kCompleteWork));
        channels_[i].busy = false;
        channels_[i].done->set();
    }
}

void
DmaDriver::registerMetrics(obs::MetricsRegistry &reg,
                           const std::string &prefix) const
{
    reg.addCounter(prefix + ".transfers", transfers);
    reg.addCounter(prefix + ".bytes", bytesMoved);
    reg.addCounter(prefix + ".irqs_handled", irqsHandled);
    reg.addAccumulator(prefix + ".transfer_us", transferUs);
    // Recovery counters exist only when armed, keeping the zero-fault
    // metric key set unchanged.
    if (recovery_) {
        reg.addCounter(prefix + ".transfer_errors", transferErrors);
        reg.addCounter(prefix + ".irq_polls", irqPolls);
    }
}

void
DmaDriver::snapState(snap::Io &io)
{
    io.check(channels_.size(), "DmaDriver::channels");
    io.check(recovery_ ? 1 : 0, "DmaDriver::recovery");
    for (Channel &c : channels_) {
        // A busy channel has a sleeping requester and an outstanding
        // completion interrupt -- impossible at quiescence.
        K2_ASSERT(!c.busy);
        io.pod(c.bytes);
        c.done->snapState(io);
    }
    io.pod(transfers);
    io.pod(bytesMoved);
    io.pod(irqsHandled);
    io.pod(transferUs);
    io.pod(transferErrors);
    io.pod(irqPolls);
}

} // namespace svc
} // namespace k2
