/**
 * @file
 * The DMA device driver (the paper's representative shadowed driver,
 * §9.2/§9.4): "used in almost all bulk IO transfers, e.g., for flash
 * and WiFi".
 *
 * One transfer (following the paper's description):
 *  1. clear the destination memory region (CPU memset);
 *  2. look for empty resources (a free channel) in the driver's
 *     channel table -- shared state, guarded by a hardware-spinlock-
 *     augmented lock;
 *  3. program the DMA engine and initiate the transfer;
 *  4. on the completion interrupt, free the resources and complete
 *     the request (waking the sleeping requester).
 *
 * The same driver object serves both kernels; whichever kernel the
 * IrqRouter currently routes kIrqDma to runs the completion ISR, and
 * the DSM keeps the channel table coherent.
 */

#ifndef K2_SVC_DMA_DRIVER_H
#define K2_SVC_DMA_DRIVER_H

#include <memory>
#include <vector>

#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "os/system.h"

namespace k2 {

namespace obs {
class MetricsRegistry;
}

namespace svc {

class DmaDriver
{
  public:
    /** Hardware spinlock index guarding the channel table. */
    static constexpr std::size_t kSpinlockIdx = 1;

    /**
     * @param sys System image.
     * @param channels Driver-visible DMA channels (<= engine channels).
     */
    explicit DmaDriver(os::SystemImage &sys, std::size_t channels = 16);

    /**
     * Register the completion ISR with @p kern. Call for every kernel
     * that may handle the shared DMA interrupt.
     */
    void attachKernel(kern::Kernel &kern);

    /**
     * Execute one memory-to-memory transfer of @p bytes and wait for
     * completion. Runs in thread context on either kernel.
     */
    sim::Task<void> transfer(kern::Thread &t, std::uint64_t bytes);

    /**
     * Arm the driver's fault-recovery paths: errored transfers (the
     * engine's error status bits) are re-programmed instead of
     * completed with bad data, and waiters poll the status register
     * after a transfer overstays its expected time, covering lost
     * completion interrupts. Off by default -- the zero-fault path is
     * unchanged.
     */
    void enableRecovery() { recovery_ = true; }

    /** @name Statistics. @{ */
    sim::Counter transfers;
    sim::Counter bytesMoved;
    sim::Counter irqsHandled;
    sim::Accumulator transferUs;
    sim::Counter transferErrors; //!< Errored transfers re-programmed.
    sim::Counter irqPolls;       //!< Timeout polls for lost IRQs.

    /** Register driver statistics under "<prefix>.*". */
    void registerMetrics(obs::MetricsRegistry &reg,
                         const std::string &prefix) const;
    /** @} */

    /** Capture/restore. Quiescence implies no transfer in flight
     *  (a busy channel has a sleeping requester and a pending IRQ). */
    void snapState(snap::Io &io);

  private:
    sim::Task<void> completionIsr(kern::Kernel &kern, soc::Core &core);
    sim::Task<void> harvest(kern::Kernel &kern, soc::Core &core);

    struct Channel
    {
        bool busy = false;
        std::uint64_t bytes = 0;
        std::unique_ptr<sim::Event> done;
    };

    os::SystemImage &sys_;
    std::vector<Channel> channels_;
    std::unique_ptr<os::SharedRegion> state_;
    bool recovery_ = false;
};

} // namespace svc
} // namespace k2

#endif // K2_SVC_DMA_DRIVER_H
