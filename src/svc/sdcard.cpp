#include "svc/sdcard.h"

#include <cstring>

#include "sim/log.h"
#include "soc/core.h"

namespace k2 {
namespace svc {

SdCard::SdCard(std::size_t block_bytes, std::uint64_t num_blocks)
    : SdCard(block_bytes, num_blocks, Timing{})
{}

SdCard::SdCard(std::size_t block_bytes, std::uint64_t num_blocks,
               Timing timing)
    : blockBytes_(block_bytes), numBlocks_(num_blocks), timing_(timing),
      data_(block_bytes * num_blocks)
{}

sim::Task<void>
SdCard::read(kern::Thread &t, std::uint64_t block,
             std::span<std::uint8_t> out)
{
    K2_ASSERT(block < numBlocks_);
    K2_ASSERT(out.size() == blockBytes_);
    // Issue the command (CPU), then block while the card transfers.
    co_await t.exec(200);
    const auto xfer = static_cast<sim::Duration>(
        static_cast<double>(blockBytes_) / timing_.readBytesPerSec *
        1e12);
    co_await t.sleep(timing_.commandLatency + xfer);
    std::memcpy(out.data(), &data_[block * blockBytes_], blockBytes_);
    reads.inc();
}

sim::Task<void>
SdCard::write(kern::Thread &t, std::uint64_t block,
              std::span<const std::uint8_t> in)
{
    K2_ASSERT(block < numBlocks_);
    K2_ASSERT(in.size() == blockBytes_);
    co_await t.exec(200);
    sim::Duration xfer = timing_.commandLatency +
                         static_cast<sim::Duration>(
                             static_cast<double>(blockBytes_) /
                             timing_.writeBytesPerSec * 1e12);
    if (++writesSinceGc_ >= timing_.gcEvery) {
        writesSinceGc_ = 0;
        gcPauses.inc();
        xfer += timing_.gcPause;
    }
    co_await t.sleep(xfer);
    std::memcpy(&data_[block * blockBytes_], in.data(), blockBytes_);
    writes.inc();
}

CachedBlockDevice::CachedBlockDevice(BlockDevice &backing,
                                     std::size_t capacity_blocks)
    : backing_(backing), capacity_(capacity_blocks)
{
    K2_ASSERT(capacity_ > 0);
}

std::size_t
CachedBlockDevice::dirtyBlocks() const
{
    std::size_t n = 0;
    for (const auto &[blk, e] : entries_)
        n += e.dirty;
    return n;
}

sim::Duration
CachedBlockDevice::copyTime(kern::Thread &t) const
{
    return static_cast<sim::Duration>(
        static_cast<double>(backing_.blockBytes()) /
        t.core().spec().memBytesPerSec * 1e12);
}

void
CachedBlockDevice::touchLru(std::uint64_t block)
{
    auto &e = entries_.at(block);
    lru_.erase(e.lruPos);
    lru_.push_front(block);
    e.lruPos = lru_.begin();
}

sim::Task<CachedBlockDevice::Entry *>
CachedBlockDevice::ensureResident(kern::Thread &t, std::uint64_t block,
                                  bool load_from_backing)
{
    auto it = entries_.find(block);
    if (it != entries_.end()) {
        hits.inc();
        touchLru(block);
        co_return &it->second;
    }

    misses.inc();
    // Evict the LRU block if full.
    if (entries_.size() >= capacity_) {
        const std::uint64_t victim = lru_.back();
        Entry &v = entries_.at(victim);
        if (v.dirty) {
            writebacks.inc();
            co_await backing_.write(t, victim, v.data);
        }
        lru_.pop_back();
        entries_.erase(victim);
    }

    Entry e;
    e.data.resize(backing_.blockBytes());
    if (load_from_backing)
        co_await backing_.read(t, block, e.data);
    lru_.push_front(block);
    e.lruPos = lru_.begin();
    auto [pos, inserted] = entries_.emplace(block, std::move(e));
    K2_ASSERT(inserted);
    co_return &pos->second;
}

sim::Task<void>
CachedBlockDevice::read(kern::Thread &t, std::uint64_t block,
                        std::span<std::uint8_t> out)
{
    K2_ASSERT(out.size() == blockBytes());
    Entry *e = co_await ensureResident(t, block, true);
    co_await t.execTime(copyTime(t));
    std::memcpy(out.data(), e->data.data(), blockBytes());
}

sim::Task<void>
CachedBlockDevice::write(kern::Thread &t, std::uint64_t block,
                         std::span<const std::uint8_t> in)
{
    K2_ASSERT(in.size() == blockBytes());
    // A full-block overwrite needs no read-modify-write fetch.
    Entry *e = co_await ensureResident(t, block, false);
    co_await t.execTime(copyTime(t));
    std::memcpy(e->data.data(), in.data(), blockBytes());
    e->dirty = true;
}

sim::Task<void>
CachedBlockDevice::flush(kern::Thread &t)
{
    // Walk from LRU to MRU so flush order is deterministic.
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
        Entry &e = entries_.at(*it);
        if (e.dirty) {
            writebacks.inc();
            co_await backing_.write(t, *it, e.data);
            e.dirty = false;
        }
    }
}

} // namespace svc
} // namespace k2
