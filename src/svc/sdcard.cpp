#include "svc/sdcard.h"

#include <cstring>

#include "sim/log.h"
#include "snap/io.h"
#include "soc/core.h"

namespace k2 {
namespace svc {

SdCard::SdCard(std::size_t block_bytes, std::uint64_t num_blocks)
    : SdCard(block_bytes, num_blocks, Timing{})
{}

SdCard::SdCard(std::size_t block_bytes, std::uint64_t num_blocks,
               Timing timing)
    : blockBytes_(block_bytes), numBlocks_(num_blocks), timing_(timing),
      data_(block_bytes * num_blocks), dirty_(num_blocks)
{}

sim::Task<void>
SdCard::read(kern::Thread &t, std::uint64_t block,
             std::span<std::uint8_t> out)
{
    K2_ASSERT(block < numBlocks_);
    K2_ASSERT(out.size() == blockBytes_);
    // Issue the command (CPU), then block while the card transfers.
    co_await t.exec(200);
    const auto xfer = static_cast<sim::Duration>(
        static_cast<double>(blockBytes_) / timing_.readBytesPerSec *
        1e12);
    co_await t.sleep(timing_.commandLatency + xfer);
    std::memcpy(out.data(), &data_[block * blockBytes_], blockBytes_);
    reads.inc();
}

sim::Task<void>
SdCard::write(kern::Thread &t, std::uint64_t block,
              std::span<const std::uint8_t> in)
{
    K2_ASSERT(block < numBlocks_);
    K2_ASSERT(in.size() == blockBytes_);
    co_await t.exec(200);
    sim::Duration xfer = timing_.commandLatency +
                         static_cast<sim::Duration>(
                             static_cast<double>(blockBytes_) /
                             timing_.writeBytesPerSec * 1e12);
    if (++writesSinceGc_ >= timing_.gcEvery) {
        writesSinceGc_ = 0;
        gcPauses.inc();
        xfer += timing_.gcPause;
    }
    co_await t.sleep(xfer);
    std::memcpy(&data_[block * blockBytes_], in.data(), blockBytes_);
    if (!dirty_[block]) {
        dirty_[block] = true;
        ++dirtyCount_;
    }
    writes.inc();
}

void
SdCard::snapState(snap::Io &io)
{
    io.check(blockBytes_, "SdCard::blockBytes");
    io.check(numBlocks_, "SdCard::numBlocks");
    io.pod(reads);
    io.pod(writes);
    io.pod(gcPauses);
    io.pod(writesSinceGc_);

    if (io.capturing()) {
        io.count(dirtyCount_);
        for (std::uint64_t b = 0; b < numBlocks_; ++b) {
            if (!dirty_[b])
                continue;
            io.pod(b);
            io.bytes(&data_[b * blockBytes_], blockBytes_);
        }
    } else {
        const std::uint64_t n = io.count(0);
        std::uint64_t imageBlock = numBlocks_; // sentinel: none left
        std::uint64_t taken = 0;
        if (taken < n)
            io.pod(imageBlock);
        for (std::uint64_t b = 0; b < numBlocks_; ++b) {
            if (!dirty_[b])
                continue;
            if (taken < n && b == imageBlock) {
                io.bytes(&data_[b * blockBytes_], blockBytes_);
                ++taken;
                imageBlock = numBlocks_;
                if (taken < n)
                    io.pod(imageBlock);
            } else {
                std::memset(&data_[b * blockBytes_], 0, blockBytes_);
                dirty_[b] = false;
            }
        }
        if (taken != n)
            K2_FATAL("snapshot restore: SD image has %llu blocks the "
                     "card never dirtied",
                     static_cast<unsigned long long>(n - taken));
        dirtyCount_ = n;
    }
}

CachedBlockDevice::CachedBlockDevice(BlockDevice &backing,
                                     std::size_t capacity_blocks)
    : backing_(backing), capacity_(capacity_blocks)
{
    K2_ASSERT(capacity_ > 0);
}

std::size_t
CachedBlockDevice::dirtyBlocks() const
{
    std::size_t n = 0;
    for (const auto &[blk, e] : entries_)
        n += e.dirty;
    return n;
}

sim::Duration
CachedBlockDevice::copyTime(kern::Thread &t) const
{
    return static_cast<sim::Duration>(
        static_cast<double>(backing_.blockBytes()) /
        t.core().spec().memBytesPerSec * 1e12);
}

void
CachedBlockDevice::touchLru(Entry &e)
{
    // Relink the existing node instead of erase + push_front: splice
    // moves it without touching the allocator, and the entry's stored
    // iterator stays valid.
    lru_.splice(lru_.begin(), lru_, e.lruPos);
    e.lruPos = lru_.begin();
}

sim::Task<CachedBlockDevice::Entry *>
CachedBlockDevice::ensureResident(kern::Thread &t, std::uint64_t block,
                                  bool load_from_backing)
{
    auto it = entries_.find(block);
    if (it != entries_.end()) {
        hits.inc();
        touchLru(it->second);
        co_return &it->second;
    }

    misses.inc();
    // Evict the LRU block if full.
    if (entries_.size() >= capacity_) {
        const std::uint64_t victim = lru_.back();
        Entry &v = entries_.at(victim);
        if (v.dirty) {
            writebacks.inc();
            co_await backing_.write(t, victim, v.data);
        }
        lru_.pop_back();
        entries_.erase(victim);
    }

    Entry e;
    e.data.resize(backing_.blockBytes());
    if (load_from_backing)
        co_await backing_.read(t, block, e.data);
    lru_.push_front(block);
    e.lruPos = lru_.begin();
    auto [pos, inserted] = entries_.emplace(block, std::move(e));
    K2_ASSERT(inserted);
    co_return &pos->second;
}

sim::Task<void>
CachedBlockDevice::read(kern::Thread &t, std::uint64_t block,
                        std::span<std::uint8_t> out)
{
    K2_ASSERT(out.size() == blockBytes());
    Entry *e = co_await ensureResident(t, block, true);
    co_await t.execTime(copyTime(t));
    std::memcpy(out.data(), e->data.data(), blockBytes());
}

sim::Task<void>
CachedBlockDevice::write(kern::Thread &t, std::uint64_t block,
                         std::span<const std::uint8_t> in)
{
    K2_ASSERT(in.size() == blockBytes());
    // A full-block overwrite needs no read-modify-write fetch.
    Entry *e = co_await ensureResident(t, block, false);
    co_await t.execTime(copyTime(t));
    std::memcpy(e->data.data(), in.data(), blockBytes());
    e->dirty = true;
}

sim::Task<void>
CachedBlockDevice::flush(kern::Thread &t)
{
    // Walk from LRU to MRU so flush order is deterministic.
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
        Entry &e = entries_.at(*it);
        if (e.dirty) {
            writebacks.inc();
            co_await backing_.write(t, *it, e.data);
            e.dirty = false;
        }
    }
}

void
CachedBlockDevice::snapState(snap::Io &io)
{
    io.check(capacity_, "CachedBlockDevice::capacity");
    io.pod(hits);
    io.pod(misses);
    io.pod(writebacks);

    // Entries in LRU order, front (MRU) first. Restore rebuilds both
    // containers from scratch -- unlike the structural tables, a block
    // cache holds no host resources beyond its payload bytes.
    std::uint64_t n = io.count(lru_.size());
    if (io.restoring()) {
        entries_.clear();
        lru_.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            std::uint64_t block = 0;
            io.pod(block);
            Entry e;
            e.data.resize(backing_.blockBytes());
            io.bytes(e.data.data(), e.data.size());
            io.pod(e.dirty);
            lru_.push_back(block);
            e.lruPos = std::prev(lru_.end());
            entries_.emplace(block, std::move(e));
        }
    } else {
        for (std::uint64_t block : lru_) {
            Entry &e = entries_.at(block);
            io.pod(block);
            io.bytes(e.data.data(), e.data.size());
            io.pod(e.dirty);
        }
    }
}

} // namespace svc
} // namespace k2
