/**
 * @file
 * Block-device interface and the RAM-backed disk used by the paper's
 * ext2 benchmark (§9.2: "we use ramdisk as the underlying block
 * device, as the SD card driver of K2 is not yet fully functional").
 */

#ifndef K2_SVC_BLOCK_H
#define K2_SVC_BLOCK_H

#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "sim/stats.h"
#include "sim/task.h"
#include "kern/thread.h"
#include "snap/io.h"

namespace k2 {
namespace svc {

/**
 * Zero-filled backing store for simulated disks.
 *
 * A value-initialised std::vector would memset (and fault in) the
 * whole device at construction -- tens of milliseconds for a 64 MB
 * disk, which dominated testbed boot. calloc hands back the kernel's
 * copy-on-write zero pages instead: untouched blocks cost nothing
 * until first written and still read as zeroes.
 */
class ZeroedStore
{
  public:
    explicit ZeroedStore(std::size_t bytes)
        : p_(static_cast<std::uint8_t *>(std::calloc(bytes ? bytes : 1, 1)))
    {
        if (!p_)
            throw std::bad_alloc();
    }

    ~ZeroedStore() { std::free(p_); }
    ZeroedStore(const ZeroedStore &) = delete;
    ZeroedStore &operator=(const ZeroedStore &) = delete;

    std::uint8_t &operator[](std::size_t i) { return p_[i]; }
    const std::uint8_t &operator[](std::size_t i) const { return p_[i]; }

  private:
    std::uint8_t *p_;
};

/** A synchronous block device accessed from thread context. */
class BlockDevice
{
  public:
    virtual ~BlockDevice() = default;

    virtual std::size_t blockBytes() const = 0;
    virtual std::uint64_t numBlocks() const = 0;

    /** Read one block into @p out (must be blockBytes() long). */
    virtual sim::Task<void> read(kern::Thread &t, std::uint64_t block,
                                 std::span<std::uint8_t> out) = 0;

    /** Write one block from @p in (must be blockBytes() long). */
    virtual sim::Task<void> write(kern::Thread &t, std::uint64_t block,
                                  std::span<const std::uint8_t> in) = 0;
};

/**
 * A RAM-backed block device.
 *
 * Transfers cost CPU time at the accessing core's memory-copy
 * bandwidth plus a small fixed request overhead -- a ramdisk is "a
 * much faster block device than real flash storage", which (as the
 * paper notes) favours the baseline by shortening the idle periods
 * that are expensive for strong cores.
 */
class RamDisk : public BlockDevice
{
  public:
    RamDisk(std::size_t block_bytes, std::uint64_t num_blocks,
            std::uint64_t request_instr = 150);

    std::size_t blockBytes() const override { return blockBytes_; }
    std::uint64_t numBlocks() const override { return numBlocks_; }

    sim::Task<void> read(kern::Thread &t, std::uint64_t block,
                         std::span<std::uint8_t> out) override;
    sim::Task<void> write(kern::Thread &t, std::uint64_t block,
                          std::span<const std::uint8_t> in) override;

    /** @name Statistics. @{ */
    sim::Counter reads;
    sim::Counter writes;
    /** @} */

    /** Blocks written at least once (the copy-on-write working set). */
    std::uint64_t dirtyBlocks() const { return dirtyCount_; }

    /**
     * Capture/restore. The backing store starts zero-filled and only
     * write() dirties it, so the image holds just the ever-written
     * blocks; restore re-zeroes blocks the instance dirtied after the
     * capture point. This keeps snapshots proportional to the disk's
     * working set, not its capacity.
     */
    void snapState(snap::Io &io);

  private:
    sim::Duration copyTime(const kern::Thread &t) const;

    std::size_t blockBytes_;
    std::uint64_t numBlocks_;
    std::uint64_t requestInstr_;
    ZeroedStore data_;
    std::vector<bool> dirty_;     //!< Per-block ever-written bit.
    std::uint64_t dirtyCount_ = 0;
};

} // namespace svc
} // namespace k2

#endif // K2_SVC_BLOCK_H
