/**
 * @file
 * An SD-card block device and a write-back buffer cache.
 *
 * The paper ran its ext2 benchmark on a ramdisk because "the SD card
 * driver of K2 is not yet fully functional", noting this *favours
 * Linux*: a real flash device has long per-request latencies whose
 * idle periods are expensive for strong cores. SdCard models such a
 * device (per-command latency + limited bandwidth, with the CPU idle
 * while the controller works); CachedBlockDevice is the page-cache
 * layer a real kernel would put in front of it -- an LRU write-back
 * cache over any BlockDevice.
 */

#ifndef K2_SVC_SDCARD_H
#define K2_SVC_SDCARD_H

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "sim/stats.h"
#include "svc/block.h"

namespace k2 {
namespace svc {

/**
 * A flash (SD) card: every command pays a fixed controller latency,
 * transfers are bandwidth-limited, and writes are slower than reads.
 * The calling thread *blocks* (core idles) while the card works.
 */
class SdCard : public BlockDevice
{
  public:
    struct Timing
    {
        sim::Duration commandLatency = sim::usec(300);
        double readBytesPerSec = 20.0e6;
        double writeBytesPerSec = 8.0e6;
        /** Extra latency on a fraction of writes (flash GC pauses). */
        sim::Duration gcPause = sim::msec(4);
        std::uint32_t gcEvery = 64; //!< One pause per this many writes.
    };

    SdCard(std::size_t block_bytes, std::uint64_t num_blocks);
    SdCard(std::size_t block_bytes, std::uint64_t num_blocks,
           Timing timing);

    std::size_t blockBytes() const override { return blockBytes_; }
    std::uint64_t numBlocks() const override { return numBlocks_; }

    sim::Task<void> read(kern::Thread &t, std::uint64_t block,
                         std::span<std::uint8_t> out) override;
    sim::Task<void> write(kern::Thread &t, std::uint64_t block,
                          std::span<const std::uint8_t> in) override;

    /** @name Statistics. @{ */
    sim::Counter reads;
    sim::Counter writes;
    sim::Counter gcPauses;
    /** @} */

    /** Capture/restore: dirty blocks only, as for RamDisk. */
    void snapState(snap::Io &io);

  private:
    std::size_t blockBytes_;
    std::uint64_t numBlocks_;
    Timing timing_;
    ZeroedStore data_;
    std::vector<bool> dirty_;       //!< Per-block: written since boot.
    std::uint64_t dirtyCount_ = 0;
    std::uint32_t writesSinceGc_ = 0;
};

/**
 * An LRU write-back cache over any BlockDevice.
 *
 * Hits are served at CPU memcpy speed; misses fetch from the backing
 * device; dirty blocks are written back on eviction or flush(). As a
 * shadowed-service building block its *metadata* belongs in the
 * service's SharedRegion; the fs already touches its state pages per
 * operation, so the cache itself only models time.
 */
class CachedBlockDevice : public BlockDevice
{
  public:
    /**
     * @param backing The device to cache (not owned).
     * @param capacity_blocks Cache size in blocks.
     */
    CachedBlockDevice(BlockDevice &backing,
                      std::size_t capacity_blocks);

    std::size_t blockBytes() const override
    {
        return backing_.blockBytes();
    }

    std::uint64_t numBlocks() const override
    {
        return backing_.numBlocks();
    }

    sim::Task<void> read(kern::Thread &t, std::uint64_t block,
                         std::span<std::uint8_t> out) override;
    sim::Task<void> write(kern::Thread &t, std::uint64_t block,
                          std::span<const std::uint8_t> in) override;

    /** Write back all dirty blocks. */
    sim::Task<void> flush(kern::Thread &t);

    std::size_t cachedBlocks() const { return lru_.size(); }
    std::size_t dirtyBlocks() const;

    /** @name Statistics. @{ */
    sim::Counter hits;
    sim::Counter misses;
    sim::Counter writebacks;
    /** @} */

    /**
     * Capture/restore. Cache contents are plain data (no parked
     * coroutines), so restore rebuilds the entry map and LRU order
     * wholesale from the image.
     */
    void snapState(snap::Io &io);

  private:
    struct Entry
    {
        std::vector<std::uint8_t> data;
        bool dirty = false;
        std::list<std::uint64_t>::iterator lruPos;
    };

    /** Move an entry's node to the MRU position. */
    void touchLru(Entry &e);

    /** Ensure @p block is resident; may evict (writing back). */
    sim::Task<Entry *> ensureResident(kern::Thread &t,
                                      std::uint64_t block,
                                      bool load_from_backing);

    sim::Duration copyTime(kern::Thread &t) const;

    BlockDevice &backing_;
    std::size_t capacity_;
    std::unordered_map<std::uint64_t, Entry> entries_;
    std::list<std::uint64_t> lru_; //!< Front = MRU.
};

} // namespace svc
} // namespace k2

#endif // K2_SVC_SDCARD_H
