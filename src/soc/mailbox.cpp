#include "soc/mailbox.h"

#include "fault/injector.h"
#include "obs/metrics.h"
#include "sim/log.h"
#include "snap/io.h"
#include "soc/irq.h"

namespace k2 {
namespace soc {

MailboxNet::MailboxNet(sim::Engine &eng, std::size_t num_domains,
                       sim::Duration one_way)
    : engine_(eng), oneWay_(one_way), fifos_(num_domains),
      inflight_(num_domains * num_domains), ctrls_(num_domains, nullptr)
{
    tracks_.reserve(num_domains);
    for (std::size_t d = 0; d < num_domains; ++d) {
        tracks_.push_back(engine_.addTrack(
            sim::strPrintf("soc.mailbox.d%zu", d)));
    }
}

void
MailboxNet::attachController(DomainId domain, InterruptController *ctrl)
{
    K2_ASSERT(domain < ctrls_.size());
    ctrls_[domain] = ctrl;
}

void
MailboxNet::send(DomainId from, DomainId to, std::uint32_t word)
{
    K2_ASSERT(from < fifos_.size());
    K2_ASSERT(to < fifos_.size());
    K2_ASSERT(from != to);
    K2_TRACE(engine_, sim::TraceCat::Mail, "mail %u -> %u word 0x%08x",
             from, to, word);
    engine_.spanInstant(tracks_[from], "send",
                        static_cast<double>(word));
    sent_.inc();
    // The payload rides in the per-pair channel queue, not the event
    // capture: arrival events only drain the head of their channel, so
    // per-pair FIFO order holds no matter how transit events are
    // ordered.
    inflight_[chanIdx(from, to)].push_back(word);
    engine_.after(oneWay_, [this, from, to]() { deliver(from, to); });
}

void
MailboxNet::deliver(DomainId from, DomainId to)
{
    auto &chan = inflight_[chanIdx(from, to)];
    K2_ASSERT(!chan.empty());
    if (fault_) {
        // A stalled receiver holds arriving mail on the wire. Defer
        // before popping: every delivery of this channel defers to the
        // same instant, and same-time events dispatch in insertion
        // order, so per-pair FIFO order is preserved.
        const sim::Time stall_end = fault_->stallEnd(to);
        if (stall_end > engine_.now()) {
            engine_.at(stall_end,
                       [this, from, to]() { deliver(from, to); });
            return;
        }
    }
    std::uint32_t word = chan.front();
    chan.pop_front();
    if (fault_) {
        using Fate = fault::FaultInjector::MailFate;
        switch (fault_->onMailDeliver(from, to, word)) {
        case Fate::Drop:
        case Fate::Corrupt:
            // Corrupted mail is detected by the modelled link ECC and
            // discarded at the receiver: same outcome as a drop, with
            // its own injection counter.
            return;
        case Fate::Duplicate:
            fifos_[to].push_back(Mail{from, word});
            delivered_.inc();
            engine_.spanInstant(tracks_[to], "deliver",
                                static_cast<double>(word));
            if (ctrls_[to])
                ctrls_[to]->raise(kIrqMailbox);
            break;
        case Fate::Deliver:
            break;
        }
    }
    fifos_[to].push_back(Mail{from, word});
    delivered_.inc();
    engine_.spanInstant(tracks_[to], "deliver",
                        static_cast<double>(word));
    if (ctrls_[to])
        ctrls_[to]->raise(kIrqMailbox);
}

std::optional<Mail>
MailboxNet::tryRead(DomainId domain)
{
    K2_ASSERT(domain < fifos_.size());
    auto &fifo = fifos_[domain];
    if (fifo.empty())
        return std::nullopt;
    Mail m = fifo.front();
    fifo.pop_front();
    return m;
}

std::size_t
MailboxNet::pending(DomainId domain) const
{
    K2_ASSERT(domain < fifos_.size());
    return fifos_[domain].size();
}

void
MailboxNet::snapState(snap::Io &io)
{
    io.check(fifos_.size(), "MailboxNet::fifos");
    for (auto &f : fifos_)
        io.podDeque(f);
    for (const auto &chan : inflight_)
        K2_ASSERT(chan.empty());
    io.pod(delivered_);
    io.pod(sent_);
}

void
MailboxNet::registerMetrics(obs::MetricsRegistry &reg,
                            const std::string &prefix) const
{
    reg.addCounter(prefix + ".sent", sent_);
    reg.addCounter(prefix + ".delivered", delivered_);
}

} // namespace soc
} // namespace k2
