#include "soc/mailbox.h"

#include "sim/log.h"
#include "soc/irq.h"

namespace k2 {
namespace soc {

MailboxNet::MailboxNet(sim::Engine &eng, std::size_t num_domains,
                       sim::Duration one_way)
    : engine_(eng), oneWay_(one_way), fifos_(num_domains),
      ctrls_(num_domains, nullptr)
{}

void
MailboxNet::attachController(DomainId domain, InterruptController *ctrl)
{
    K2_ASSERT(domain < ctrls_.size());
    ctrls_[domain] = ctrl;
}

void
MailboxNet::send(DomainId from, DomainId to, std::uint32_t word)
{
    K2_ASSERT(from < fifos_.size());
    K2_ASSERT(to < fifos_.size());
    K2_ASSERT(from != to);
    K2_TRACE(engine_, sim::TraceCat::Mail, "mail %u -> %u word 0x%08x",
             from, to, word);
    engine_.after(oneWay_, [this, from, to, word]() {
        fifos_[to].push_back(Mail{from, word});
        delivered_.inc();
        if (ctrls_[to])
            ctrls_[to]->raise(kIrqMailbox);
    });
}

std::optional<Mail>
MailboxNet::tryRead(DomainId domain)
{
    K2_ASSERT(domain < fifos_.size());
    auto &fifo = fifos_[domain];
    if (fifo.empty())
        return std::nullopt;
    Mail m = fifo.front();
    fifo.pop_front();
    return m;
}

std::size_t
MailboxNet::pending(DomainId domain) const
{
    K2_ASSERT(domain < fifos_.size());
    return fifos_[domain].size();
}

} // namespace soc
} // namespace k2
