/**
 * @file
 * Hardware spinlocks: memory-mapped test-and-set bits for inter-domain
 * synchronisation (OMAP4 provides a bank of 32).
 *
 * Acquiring a held lock spins: the spinning core stays active and burns
 * energy at the platform's spin-poll interval, with each poll also
 * charging one interconnect access. K2 augments the kernel locks of
 * shadowed services with these (§5.3).
 */

#ifndef K2_SOC_SPINLOCK_H
#define K2_SOC_SPINLOCK_H

#include <cstdint>
#include <vector>

#include "sim/engine.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "snap/io.h"
#include "soc/core.h"

namespace k2 {
namespace soc {

class HwSpinlockBank
{
  public:
    HwSpinlockBank(sim::Engine &eng, std::size_t count,
                   const PlatformCosts &costs)
        : engine_(eng), costs_(costs), taken_(count, false)
    {}

    std::size_t size() const { return taken_.size(); }

    /** Atomic test-and-set; true if the lock was acquired. */
    bool
    tryAcquire(std::size_t idx)
    {
        K2_ASSERT(idx < taken_.size());
        if (taken_[idx]) {
            contended_.inc();
            return false;
        }
        taken_[idx] = true;
        acquisitions_.inc();
        return true;
    }

    /**
     * Spin on @p core until the lock is acquired.
     *
     * Each unsuccessful poll charges the spin interval plus one bus
     * access of active time on the spinning core.
     */
    sim::Task<void>
    acquire(std::size_t idx, Core &core)
    {
        // The initial attempt also pays one bus access.
        co_await core.execTime(costs_.busAccess);
        while (!tryAcquire(idx))
            co_await core.execTime(costs_.spinPoll + costs_.busAccess);
    }

    /** Release a held lock. */
    void
    release(std::size_t idx)
    {
        K2_ASSERT(idx < taken_.size());
        K2_ASSERT(taken_[idx]);
        taken_[idx] = false;
    }

    bool isHeld(std::size_t idx) const { return taken_.at(idx); }

    /** @name Statistics. @{ */
    std::uint64_t acquisitions() const { return acquisitions_.value(); }
    std::uint64_t contendedPolls() const { return contended_.value(); }
    /** @} */

    /** Capture/restore lock bits and contention counters. */
    void
    snapState(snap::Io &io)
    {
        io.check(taken_.size(), "HwSpinlockBank::locks");
        for (std::size_t i = 0; i < taken_.size(); ++i) {
            std::uint8_t t = taken_[i] ? 1 : 0;
            io.pod(t);
            if (io.restoring())
                taken_[i] = (t != 0);
        }
        io.pod(acquisitions_);
        io.pod(contended_);
    }

  private:
    sim::Engine &engine_;
    const PlatformCosts &costs_;
    std::vector<bool> taken_;
    sim::Counter acquisitions_;
    sim::Counter contended_;
};

} // namespace soc
} // namespace k2

#endif // K2_SOC_SPINLOCK_H
