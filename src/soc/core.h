/**
 * @file
 * A simulated heterogeneous core with power-state accounting.
 *
 * Cores have three power states:
 *  - Active: at least one execution (thread or interrupt handler) is
 *    charging cycles; draws the current operating point's active power.
 *  - Idle: clocked but waiting (WFI); draws idle power. After the
 *    platform's inactive timeout elapses without any execution, the
 *    core transitions to...
 *  - Inactive: power-gated; draws ~0. Resuming execution charges the
 *    wake latency and wake energy.
 *
 * Execution cost is expressed in *reference instructions*; a core
 * converts them to cycles through its sustained IPC and to time through
 * its operating frequency, which is how the strong/weak performance
 * asymmetry (paper §9.2: the weak core delivers 20-70% of the strong
 * core's 350 MHz performance) arises.
 */

#ifndef K2_SOC_CORE_H
#define K2_SOC_CORE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.h"
#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "soc/config.h"
#include "soc/power.h"

namespace k2 {
namespace soc {

/** Core power state. */
enum class PowerState { Active, Idle, Inactive };

/** Printable name of a power state. */
const char *powerStateName(PowerState s);

class Core
{
  public:
    Core(sim::Engine &eng, EnergyMeter &meter, RailId rail,
         const CoreSpec &spec, const PlatformCosts &costs, CoreId id,
         DomainId domain);

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    /** @name Identity. @{ */
    CoreId id() const { return id_; }
    DomainId domain() const { return domain_; }
    const CoreSpec &spec() const { return spec_; }
    /** @} */

    /** @name Frequency control. @{ */
    std::uint64_t hz() const { return spec_.points[point_].hz; }
    std::size_t operatingPoint() const { return point_; }
    void setOperatingPoint(std::size_t idx);
    /** @} */

    /** Time to execute @p instructions at the current point. */
    sim::Duration instrTime(std::uint64_t instructions) const;

    /**
     * Execute @p instructions of reference work on this core.
     *
     * Wakes the core if it is inactive (charging the penalty), holds it
     * Active for the computed duration, then releases it (it becomes
     * Idle if no other execution overlaps).
     */
    sim::Task<void> exec(std::uint64_t instructions);

    /** Execute fixed-duration active work (e.g. device-register IO). */
    sim::Task<void> execTime(sim::Duration d);

    /** Wake the core if inactive; completes when it is usable. */
    sim::Task<void> ensureAwake();

    /**
     * True when ensureAwake() would complete without suspending --
     * callers on hot paths use this to skip spawning its coroutine
     * (the overwhelmingly common case is an already-awake core).
     */
    bool awake() const
    {
        return state_ != PowerState::Inactive && !waking_;
    }

    /**
     * @name Active pinning.
     *
     * Hold the core in the Active state across an await of unknown
     * duration (modelling a spin-wait, e.g. the DSM requester spinning
     * for PutExclusive). The core must be awake. @{
     */
    void pinActive() { beginBusy(); }
    void unpinActive() { endBusy(); }
    /** @} */

    /** Register a callback invoked after every power-state change. */
    void
    addStateListener(std::function<void(PowerState)> fn)
    {
        listeners_.push_back(std::move(fn));
    }

    /**
     * Note that a thread ran on this core (called by the scheduler).
     * Threads keep the core awake for the full inactive timeout;
     * interrupt-only wakeups re-gate after the much shorter
     * irqRegateTimeout.
     */
    void noteThreadActivity();

    PowerState state() const { return state_; }
    bool isInactive() const { return state_ == PowerState::Inactive; }

    /** @name Residency statistics. @{ */
    sim::Duration activeTime() const;
    sim::Duration idleTime() const;
    sim::Duration inactiveTime() const;
    std::uint64_t wakeups() const { return wakeups_.value(); }
    std::uint64_t instructionsRetired() const { return instrs_.value(); }
    /** @} */

    /** Capture/restore power state, residency, and timer epochs. */
    void snapState(snap::Io &io);

  private:
    void setState(PowerState s);
    void beginBusy();
    void endBusy();
    std::vector<std::function<void(PowerState)>> listeners_;
    void armInactiveTimer();
    double powerFor(PowerState s) const;

    sim::Engine &engine_;
    EnergyMeter &meter_;
    RailId rail_;
    std::uint32_t client_;
    CoreSpec spec_;
    const PlatformCosts &costs_;
    CoreId id_;
    DomainId domain_;

    std::size_t point_;
    sim::TrackId track_; //!< Structured-span track for power states.
    PowerState state_ = PowerState::Idle;
    std::uint32_t busyCount_ = 0;
    bool waking_ = false;
    sim::Event wakeDone_;
    sim::EventId inactiveTimer_;
    std::uint64_t idleEpoch_ = 0;
    sim::Time lastThreadActivity_ = 0;

    // Residency bookkeeping.
    mutable sim::Time lastStateChange_ = 0;
    mutable sim::Duration residency_[3] = {0, 0, 0};
    sim::Counter wakeups_;
    sim::Counter instrs_;
};

} // namespace soc
} // namespace k2

#endif // K2_SOC_CORE_H
