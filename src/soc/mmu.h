/**
 * @file
 * MMU and TLB models.
 *
 * The DSM (§6.3) depends on two MMU properties the paper discusses at
 * length:
 *  - the strong domain's ARMv7-A MMU has a hardware table walker and
 *    per-page read/write permissions;
 *  - the weak domain's Cortex-M3 MMU on OMAP4 is two cascaded levels
 *    where the *first* level is a software-loaded, ten-entry TLB and is
 *    the only level with permission bits. Using it to distinguish reads
 *    from writes (needed for a three-state protocol's read-sharing)
 *    thrashes those ten entries.
 *
 * The Tlb here is a real FIFO TLB simulation; Mmu composes it with walk
 * costs to price address translations and protection changes.
 */

#ifndef K2_SOC_MMU_H
#define K2_SOC_MMU_H

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "sim/stats.h"
#include "sim/time.h"
#include "soc/config.h"

namespace k2 {
namespace snap {
class Io;
}
namespace soc {

/** A virtual page number. */
using Vpn = std::uint64_t;

/** Mapping granularity for a region (§6.3 memory-footprint opt.). */
enum class MapGrain
{
    Page4K,     //!< 4 KB pages: DSM-trappable, one TLB entry each.
    Section1M,  //!< 1 MB sections: 256 pages per TLB entry.
    Super16M,   //!< 16 MB supersections: 4096 pages per TLB entry.
};

/** Number of 4 KB pages covered by one entry of the given grain. */
std::uint64_t pagesPerEntry(MapGrain grain);

/**
 * A FIFO-replacement TLB.
 */
class Tlb
{
  public:
    explicit Tlb(std::size_t entries)
        : capacity_(entries)
    {}

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return fifo_.size(); }

    /**
     * Look up a tag; inserts it (evicting FIFO) on miss.
     *
     * @return true on hit.
     */
    bool access(std::uint64_t tag);

    /** Invalidate one tag if present. */
    void invalidate(std::uint64_t tag);

    /** Invalidate everything. */
    void flushAll();

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    /** Capture/restore resident entries (FIFO order) and counters. */
    void snapState(snap::Io &io);

    double
    missRate() const
    {
        const auto total = hits_.value() + misses_.value();
        return total ? static_cast<double>(misses_.value()) / total : 0.0;
    }

  private:
    std::size_t capacity_;
    std::deque<std::uint64_t> fifo_;
    std::unordered_set<std::uint64_t> present_;
    sim::Counter hits_;
    sim::Counter misses_;
};

/**
 * Per-kernel MMU cost model.
 */
class Mmu
{
  public:
    /**
     * @param spec The core type whose MMU this is.
     */
    explicit Mmu(const CoreSpec &spec);

    MmuKind kind() const { return kind_; }
    Tlb &tlb() { return tlb_; }
    const Tlb &tlb() const { return tlb_; }

    /**
     * Charge a translation of @p vpn mapped at @p grain.
     *
     * @return Time the access costs (0 on a TLB hit).
     */
    sim::Duration translate(Vpn vpn, MapGrain grain);

    /** Cost of a page-table entry update + TLB shootdown of the page. */
    sim::Duration protectionUpdate(Vpn vpn);

    /**
     * Extra cost per DSM fault when the protocol needs the MMU to
     * distinguish reads from writes (three-state protocols).
     *
     * Zero on a SingleLevel MMU. On the cascaded M3 MMU every tracked
     * page must occupy a first-level TLB entry, so read tracking
     * thrashes the ten-entry TLB (§6.3 "An alternative design").
     */
    sim::Duration readTrackPenalty() const;

    /** Walk cost for one translation miss. */
    sim::Duration walkCost() const { return walkCost_; }

    void snapState(snap::Io &io);

  private:
    MmuKind kind_;
    Tlb tlb_;
    sim::Duration walkCost_;
    sim::Duration ptUpdateCost_;
};

} // namespace soc
} // namespace k2

#endif // K2_SOC_MMU_H
