/**
 * @file
 * Memory-to-memory DMA engine (modelled on the OMAP4 sDMA block).
 *
 * The engine has a number of channels that software programs with a
 * transfer size. Transfers are served in FIFO order by a single
 * internal mover, so concurrent channels share the engine's total
 * bandwidth -- the effect behind Table 6, where two kernels invoking
 * the DMA driver concurrently split ~40 MB/s. Completion of each
 * transfer latches the channel's status bit and raises the shared DMA
 * interrupt, which is wired to every coherence domain.
 */

#ifndef K2_SOC_DMA_H
#define K2_SOC_DMA_H

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/engine.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "soc/config.h"

namespace k2 {
namespace fault {
class FaultInjector;
}
namespace soc {

class DmaEngine
{
  public:
    /** Called on each transfer completion (wired to the shared IRQ). */
    using CompletionIrq = std::function<void()>;

    DmaEngine(sim::Engine &eng, const PlatformCosts &costs,
              std::size_t channels);

    /** Wire the completion interrupt. */
    void setCompletionIrq(CompletionIrq irq) { irq_ = std::move(irq); }

    std::size_t numChannels() const { return channelBusy_.size(); }

    /** True if @p chan has a transfer programmed or in flight. */
    bool channelBusy(std::size_t chan) const;

    /**
     * Program channel @p chan to move @p bytes and start it.
     *
     * Programming a busy channel is a software bug (panics).
     */
    void program(std::size_t chan, std::uint64_t bytes);

    /**
     * Read-and-clear the completion status register.
     *
     * @return Bitmask of channels (bit i = channel i, for the first 64
     *         channels) whose transfers completed since the last read.
     */
    std::uint64_t readStatus();

    /**
     * Read-and-clear the error status register: channels whose last
     * transfer completed with an error (injected fault). An errored
     * transfer still sets its completion bit -- the channel finished,
     * the data is bad -- mirroring the sDMA CSR error flags.
     */
    std::uint64_t readErrors();

    /** Attach a fault injector (transfer error, completion-IRQ loss). */
    void setFaultInjector(fault::FaultInjector *inj) { fault_ = inj; }

    /** @name Statistics. @{ */
    std::uint64_t transfersCompleted() const { return completed_.value(); }
    std::uint64_t bytesMoved() const { return bytes_.value(); }
    /** @} */

    /** Engine time to move @p bytes once started (excludes queueing). */
    sim::Duration transferTime(std::uint64_t bytes) const;

    /** Capture/restore latched status bits and counters (idle only). */
    void snapState(snap::Io &io);

  private:
    sim::Task<void> serve();

    struct Request
    {
        std::size_t chan;
        std::uint64_t bytes;
    };

    sim::Engine &engine_;
    const PlatformCosts &costs_;
    CompletionIrq irq_;
    std::vector<bool> channelBusy_;
    std::deque<Request> queue_;
    bool serving_ = false;
    std::uint64_t statusBits_ = 0;
    std::uint64_t errorBits_ = 0;
    fault::FaultInjector *fault_ = nullptr;
    sim::Counter completed_;
    sim::Counter bytes_;
};

} // namespace soc
} // namespace k2

#endif // K2_SOC_DMA_H
