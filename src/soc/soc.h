/**
 * @file
 * The top-level simulated SoC: coherence domains, shared RAM, the
 * system interconnect's shared peripherals (DMA engine), hardware
 * mailboxes and spinlocks, and shared-interrupt wiring.
 */

#ifndef K2_SOC_SOC_H
#define K2_SOC_SOC_H

#include <memory>
#include <vector>

#include "sim/engine.h"
#include "soc/config.h"
#include "soc/dma.h"
#include "soc/domain.h"
#include "soc/mailbox.h"
#include "soc/power.h"
#include "soc/spinlock.h"

namespace k2 {

namespace obs {
class MetricsRegistry;
}
namespace fault {
class FaultInjector;
}

namespace soc {

class Soc
{
  public:
    Soc(sim::Engine &eng, SocConfig config);

    Soc(const Soc &) = delete;
    Soc &operator=(const Soc &) = delete;

    sim::Engine &engine() { return engine_; }
    const SocConfig &config() const { return config_; }
    const PlatformCosts &costs() const { return config_.costs; }

    std::size_t numDomains() const { return domains_.size(); }
    CoherenceDomain &domain(DomainId id) { return *domains_.at(id); }
    const CoherenceDomain &domain(DomainId id) const
    {
        return *domains_.at(id);
    }

    EnergyMeter &meter() { return meter_; }
    const EnergyMeter &meter() const { return meter_; }
    MailboxNet &mailbox() { return *mailbox_; }
    HwSpinlockBank &spinlocks() { return *spinlocks_; }
    DmaEngine &dma() { return *dma_; }

    /** @name RAM geometry. @{ */
    std::size_t pageBytes() const { return config_.pageBytes; }
    std::size_t numPages() const
    {
        return config_.ramBytes / config_.pageBytes;
    }
    /** @} */

    /**
     * Raise a shared (IO peripheral) interrupt, physically wired to
     * every domain. Controllers whose line is masked latch it pending;
     * system software (K2's IrqRouter / the baseline kernel) arranges
     * masks so exactly one domain accepts it.
     */
    void raiseSharedIrq(IrqLine line);

    /**
     * Allocate a platform-unique thread id (monotonic from 1).
     *
     * All kernels booted on this SoC draw from one counter so tids
     * are unique across coherence domains, and the counter is owned
     * by the platform -- not a process-wide global -- so concurrent
     * simulator instances stay fully isolated and each run's tid
     * sequence is deterministic.
     */
    std::uint32_t allocThreadId() { return nextTid_++; }

    /**
     * Thread a fault injector through every hook point (mailbox net,
     * DMA engine, each domain's interrupt controller) and arm its
     * scheduled clauses. Pass nullptr to detach.
     */
    void attachFaultInjector(fault::FaultInjector *inj);

    /**
     * Register all hardware-level metrics under the "soc." prefix:
     * mailbox traffic, DMA transfers, hardware spinlock contention,
     * per-domain interrupt counts, per-core residency/wakeups and
     * per-rail energy.
     */
    void registerMetrics(obs::MetricsRegistry &reg) const;

    /**
     * Capture/restore all hardware state: the tid counter, energy
     * meter, every domain (cores + interrupt controllers), mailboxes,
     * spinlocks, and the DMA engine. The owning image captures the
     * engine itself.
     */
    void snapState(snap::Io &io);

  private:
    sim::Engine &engine_;
    SocConfig config_;
    EnergyMeter meter_;
    std::vector<std::unique_ptr<CoherenceDomain>> domains_;
    std::unique_ptr<MailboxNet> mailbox_;
    std::unique_ptr<HwSpinlockBank> spinlocks_;
    std::unique_ptr<DmaEngine> dma_;
    std::uint32_t nextTid_ = 1;
};

} // namespace soc
} // namespace k2

#endif // K2_SOC_SOC_H
