#include "soc/domain.h"

namespace k2 {
namespace soc {

CoherenceDomain::CoherenceDomain(sim::Engine &eng, EnergyMeter &meter,
                                 const DomainSpec &spec,
                                 const PlatformCosts &costs, DomainId id,
                                 std::size_t num_irq_lines,
                                 CoreId first_core_id)
    : engine_(eng), spec_(spec), id_(id)
{
    rail_ = meter.addRail(spec.name);
    std::vector<Core *> raw;
    for (std::size_t i = 0; i < spec.numCores; ++i) {
        cores_.push_back(std::make_unique<Core>(
            eng, meter, rail_, spec.core, costs,
            first_core_id + static_cast<CoreId>(i), id));
        raw.push_back(cores_.back().get());
    }
    irqCtrl_ = std::make_unique<InterruptController>(
        eng, std::move(raw), num_irq_lines, spec.irqEntryInstr);

    // The uncore (interconnect/L2/SCU) draws power whenever any core
    // in the domain is not power-gated.
    uncoreClient_ = meter.addClient(
        rail_, allInactive() ? spec_.uncoreInactiveMw
                             : spec_.uncoreActiveMw);
    for (auto &c : cores_) {
        c->addStateListener([this, &meter](PowerState) {
            meter.setClientPower(rail_, uncoreClient_,
                                 allInactive() ? spec_.uncoreInactiveMw
                                               : spec_.uncoreActiveMw);
        });
    }
}

void
CoherenceDomain::snapState(snap::Io &io)
{
    for (auto &c : cores_)
        c->snapState(io);
    irqCtrl_->snapState(io);
}

bool
CoherenceDomain::allInactive() const
{
    for (const auto &c : cores_) {
        if (!c->isInactive())
            return false;
    }
    return true;
}

sim::Duration
CoherenceDomain::flushTime(std::size_t bytes) const
{
    const std::size_t lines =
        (bytes + spec_.cacheLineBytes - 1) / spec_.cacheLineBytes;
    return static_cast<sim::Duration>(lines) * spec_.cacheLineFlush;
}

sim::Duration
CoherenceDomain::refillTime(std::size_t bytes) const
{
    // A refill streams lines back in; charge roughly half the flush
    // cost per line (no write-back needed).
    const std::size_t lines =
        (bytes + spec_.cacheLineBytes - 1) / spec_.cacheLineBytes;
    return static_cast<sim::Duration>(lines) * (spec_.cacheLineFlush / 2);
}

} // namespace soc
} // namespace k2
