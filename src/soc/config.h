/**
 * @file
 * Static configuration of a simulated multi-domain SoC.
 *
 * The default configuration, omap4Config(), reproduces the platform of
 * the K2 paper (Tables 1 and 3): a strong coherence domain with two
 * Cortex-A9-class cores and a weak domain with one usable
 * Cortex-M3-class core, connected by hardware mailboxes and spinlocks,
 * sharing RAM and IO peripherals.
 */

#ifndef K2_SOC_CONFIG_H
#define K2_SOC_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace k2 {
namespace soc {

/** Index of a coherence domain on the SoC. */
using DomainId = std::uint32_t;

/** Global index of a core on the SoC. */
using CoreId = std::uint32_t;

/** A DVFS operating point. */
struct OperatingPoint
{
    std::uint64_t hz;   //!< Core frequency.
    double activeMw;    //!< Power while executing at this point.
};

/** Which MMU the domain's cores have (affects DSM fault costs, §6.3). */
enum class MmuKind
{
    SingleLevel,    //!< ARMv7-A style: page-table walker, r/w perms.
    CascadedTwoLevel //!< OMAP4 M3 style: tiny SW-loaded L1 TLB in front.
};

/** Specification of one core type. */
struct CoreSpec
{
    std::string name;           //!< e.g. "Cortex-A9".
    std::string isa;            //!< e.g. "ARM" / "Thumb-2".
    std::vector<OperatingPoint> points; //!< Allowed DVFS points.
    std::size_t defaultPoint = 0;   //!< Index into points at boot.
    double instrPerCycle = 1.0; //!< Sustained IPC on reference work.
    /**
     * Extra slowdown of kernel code touching large data structures
     * (page allocator metadata, page tables) on this core, relative to
     * its IPC on streaming work. Captures the weak core's tiny cache
     * and slow RAM path; calibrated so the shadow kernel's Table 4 /
     * Table 5 latencies match the paper.
     */
    double kernelCostFactor = 1.0;
    /** Sustained CPU memory copy/clear bandwidth, bytes per second
     *  (drives memset/memcpy costs in drivers and the net stack). */
    double memBytesPerSec = 1.0e9;
    double idleMw = 0.0;        //!< Power while clocked but idle (WFI).
    double inactiveMw = 0.0;    //!< Power while power-gated.
    sim::Duration wakeLatency = 0;  //!< Inactive -> active latency.
    double wakeEnergyUj = 0.0;  //!< Energy burned per wakeup.
    MmuKind mmu = MmuKind::SingleLevel;
    std::size_t l1TlbEntries = 32;  //!< First-level TLB size.
};

/** Specification of one coherence domain. */
struct DomainSpec
{
    std::string name;       //!< e.g. "strong" / "weak".
    CoreSpec core;          //!< All cores in a domain are homogeneous.
    std::size_t numCores = 1;
    /** Cost of flushing+invalidating one cache line to RAM. */
    sim::Duration cacheLineFlush = sim::nsec(60);
    std::size_t cacheLineBytes = 32;
    /**
     * Power of the domain's uncore -- coherent interconnect, shared
     * cache, snoop unit -- while any core in the domain is not
     * power-gated (§2.2: "the coherent interconnect itself consumes
     * significant power").
     */
    double uncoreActiveMw = 0.0;
    /** Uncore power when the whole domain is power-gated. */
    double uncoreInactiveMw = 0.05;
    /** Reference instructions charged for interrupt entry/exit (the
     *  M3's hardware-stacked entry is much cheaper than the A9's). */
    std::uint64_t irqEntryInstr = 300;
};

/** Tunable costs common to the platform. */
struct PlatformCosts
{
    /** One-way hardware mailbox latency (paper: ~5 us round trip). */
    sim::Duration mailboxOneWay = sim::nsec(2500);
    /** Kernel context switch (paper: 3-4 us). */
    sim::Duration contextSwitch = sim::nsec(3500);
    /** Poll interval while spinning on a hardware spinlock. */
    sim::Duration spinPoll = sim::nsec(200);
    /** Idle period after *thread* activity before a core is
     *  power-gated (paper: 5 s). Zero disables power gating. */
    sim::Duration inactiveTimeout = sim::sec(5);
    /**
     * Idle period before re-gating a core that was woken only to run
     * interrupt handlers (e.g. servicing a DSM request), with no
     * thread dispatched since. Models cpuidle quickly re-entering the
     * deep state when nothing is runnable.
     */
    sim::Duration irqRegateTimeout = sim::usec(100);
    /** Peak memory-to-memory DMA engine bandwidth, bytes/sec
     *  (calibrated so the IO-bound rows of Table 6 land at
     *  ~40.5 MB/s). */
    double dmaBandwidth = 42.0e6;
    /** Fixed engine time to start one programmed DMA transfer. */
    sim::Duration dmaSetup = sim::usec(2);
    /** Interconnect word (32-bit) access latency. */
    sim::Duration busAccess = sim::nsec(50);
};

/** Top-level SoC configuration. */
struct SocConfig
{
    std::string name;
    std::vector<DomainSpec> domains;
    PlatformCosts costs;
    std::size_t ramBytes = 1ull << 30;  //!< 1 GB.
    std::size_t pageBytes = 4096;
    std::size_t numHwSpinlocks = 32;
    std::size_t numDmaChannels = 32;
    std::size_t numIrqLines = 64;

    /** Validate invariants; calls sim::fatal() on a bad config. */
    void validate() const;
};

/** Index of the strong domain in omap4Config(). */
inline constexpr DomainId kStrongDomain = 0;

/** Index of the weak domain in omap4Config(). */
inline constexpr DomainId kWeakDomain = 1;

/**
 * The paper's evaluation platform: TI OMAP4.
 *
 * Strong domain: 2x Cortex-A9, 350-1200 MHz, ARM ISA, 79.8 mW active at
 * 350 MHz / 672 mW at 1200 MHz, 25.2 mW idle. Weak domain: 1x Cortex-M3
 * (the second M3 on OMAP4 is reserved by the boot firmware), 100-200
 * MHz, Thumb-2, 21.1 mW active at 200 MHz, 3.8 mW idle. Both domains
 * are < 0.1 mW when inactive. (Paper Tables 1 and 3.)
 */
SocConfig omap4Config();

/**
 * A forward-looking three-domain SoC (paper §11: "one system may
 * embrace more, but not many, types of heterogeneous domains"):
 * omap4Config() plus a third, even weaker always-on sensor-hub domain
 * with one Cortex-M0-class core.
 */
SocConfig threeDomainConfig();

/** Index of the sensor-hub domain in threeDomainConfig(). */
inline constexpr DomainId kHubDomain = 2;

} // namespace soc
} // namespace k2

#endif // K2_SOC_CONFIG_H
