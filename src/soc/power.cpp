#include "soc/power.h"

#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace soc {

RailId
EnergyMeter::addRail(std::string name)
{
    Rail rail;
    rail.name = std::move(name);
    rail.lastChange = engine_.now();
    rail.track = engine_.addTrack("soc.power." + rail.name);
    rails_.push_back(std::move(rail));
    return static_cast<RailId>(rails_.size() - 1);
}

std::uint32_t
EnergyMeter::addClient(RailId rail, double initial_mw)
{
    K2_ASSERT(rail < rails_.size());
    Rail &r = rails_[rail];
    settle(r);
    r.clientMw.push_back(initial_mw);
    r.totalMw += initial_mw;
    return static_cast<std::uint32_t>(r.clientMw.size() - 1);
}

void
EnergyMeter::setClientPower(RailId rail, std::uint32_t client, double mw)
{
    K2_ASSERT(rail < rails_.size());
    Rail &r = rails_[rail];
    K2_ASSERT(client < r.clientMw.size());
    settle(r);
    r.totalMw += mw - r.clientMw[client];
    r.clientMw[client] = mw;
    engine_.spanCounter(r.track, "mW", r.totalMw);
}

void
EnergyMeter::addPulse(RailId rail, double uj)
{
    K2_ASSERT(rail < rails_.size());
    Rail &r = rails_[rail];
    settle(r);
    r.accumulatedUj += uj;
}

void
EnergyMeter::settle(Rail &rail) const
{
    const sim::Time now = engine_.now();
    if (now > rail.lastChange) {
        // mW * s = mJ; we track uJ, so mW * s * 1000.
        rail.accumulatedUj +=
            rail.totalMw * sim::toSec(now - rail.lastChange) * 1000.0;
    }
    rail.lastChange = now;
}

double
EnergyMeter::energyUj(RailId rail) const
{
    K2_ASSERT(rail < rails_.size());
    settle(rails_[rail]);
    return rails_[rail].accumulatedUj;
}

double
EnergyMeter::totalEnergyUj() const
{
    double total = 0.0;
    for (RailId i = 0; i < rails_.size(); ++i)
        total += energyUj(i);
    return total;
}

double
EnergyMeter::powerMw(RailId rail) const
{
    K2_ASSERT(rail < rails_.size());
    return rails_[rail].totalMw;
}

const std::string &
EnergyMeter::railName(RailId rail) const
{
    K2_ASSERT(rail < rails_.size());
    return rails_[rail].name;
}

void
EnergyMeter::snapState(snap::Io &io)
{
    io.check(rails_.size(), "EnergyMeter::rails");
    for (Rail &r : rails_) {
        io.check(r.clientMw.size(), "EnergyMeter::clients");
        io.check(r.track, "EnergyMeter::track");
        for (double &mw : r.clientMw)
            io.pod(mw);
        io.pod(r.totalMw);
        io.pod(r.accumulatedUj);
        io.pod(r.lastChange);
    }
}

EnergyMeter::Snapshot
EnergyMeter::snapshot() const
{
    Snapshot snap;
    snap.energies_.reserve(rails_.size());
    for (RailId i = 0; i < rails_.size(); ++i)
        snap.energies_.push_back(energyUj(i));
    return snap;
}

double
EnergyMeter::Snapshot::railUj(const EnergyMeter &meter, RailId rail) const
{
    K2_ASSERT(rail < energies_.size());
    return meter.energyUj(rail) - energies_[rail];
}

double
EnergyMeter::Snapshot::totalUj(const EnergyMeter &meter) const
{
    double total = 0.0;
    for (RailId i = 0; i < energies_.size(); ++i)
        total += railUj(meter, i);
    return total;
}

} // namespace soc
} // namespace k2
