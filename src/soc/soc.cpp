#include "soc/soc.h"

#include "sim/log.h"

namespace k2 {
namespace soc {

Soc::Soc(sim::Engine &eng, SocConfig config)
    : engine_(eng), config_(std::move(config)), meter_(eng)
{
    config_.validate();

    CoreId next_core = 0;
    for (DomainId id = 0; id < config_.domains.size(); ++id) {
        domains_.push_back(std::make_unique<CoherenceDomain>(
            eng, meter_, config_.domains[id], config_.costs, id,
            config_.numIrqLines, next_core));
        next_core += static_cast<CoreId>(config_.domains[id].numCores);
    }

    mailbox_ = std::make_unique<MailboxNet>(
        eng, domains_.size(), config_.costs.mailboxOneWay);
    for (DomainId id = 0; id < domains_.size(); ++id)
        mailbox_->attachController(id, &domains_[id]->irqCtrl());

    spinlocks_ = std::make_unique<HwSpinlockBank>(
        eng, config_.numHwSpinlocks, config_.costs);

    dma_ = std::make_unique<DmaEngine>(eng, config_.costs,
                                       config_.numDmaChannels);
    dma_->setCompletionIrq([this]() { raiseSharedIrq(kIrqDma); });
}

void
Soc::raiseSharedIrq(IrqLine line)
{
    // The signal is physically wired to every domain; per-domain masks
    // decide who accepts it. Controllers latch it pending when masked,
    // which can later produce a spurious delivery -- handlers must (and
    // ours do) check their device's status register.
    for (auto &d : domains_)
        d->irqCtrl().raise(line);
}

} // namespace soc
} // namespace k2
