#include "soc/soc.h"

#include "fault/injector.h"
#include "obs/metrics.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace soc {

Soc::Soc(sim::Engine &eng, SocConfig config)
    : engine_(eng), config_(std::move(config)), meter_(eng)
{
    config_.validate();

    CoreId next_core = 0;
    for (DomainId id = 0; id < config_.domains.size(); ++id) {
        domains_.push_back(std::make_unique<CoherenceDomain>(
            eng, meter_, config_.domains[id], config_.costs, id,
            config_.numIrqLines, next_core));
        next_core += static_cast<CoreId>(config_.domains[id].numCores);
    }

    mailbox_ = std::make_unique<MailboxNet>(
        eng, domains_.size(), config_.costs.mailboxOneWay);
    for (DomainId id = 0; id < domains_.size(); ++id)
        mailbox_->attachController(id, &domains_[id]->irqCtrl());

    spinlocks_ = std::make_unique<HwSpinlockBank>(
        eng, config_.numHwSpinlocks, config_.costs);

    dma_ = std::make_unique<DmaEngine>(eng, config_.costs,
                                       config_.numDmaChannels);
    dma_->setCompletionIrq([this]() { raiseSharedIrq(kIrqDma); });
}

void
Soc::attachFaultInjector(fault::FaultInjector *inj)
{
    mailbox_->setFaultInjector(inj);
    dma_->setFaultInjector(inj);
    for (DomainId id = 0; id < domains_.size(); ++id)
        domains_[id]->irqCtrl().setFaultInjector(inj, id);
    if (inj) {
        inj->arm([this](std::uint32_t dom, std::uint32_t line) {
            domain(static_cast<DomainId>(dom)).irqCtrl().raise(line);
        });
    }
}

void
Soc::raiseSharedIrq(IrqLine line)
{
    // The signal is physically wired to every domain; per-domain masks
    // decide who accepts it. Controllers latch it pending when masked,
    // which can later produce a spurious delivery -- handlers must (and
    // ours do) check their device's status register.
    for (auto &d : domains_)
        d->irqCtrl().raise(line);
}

void
Soc::snapState(snap::Io &io)
{
    io.pod(nextTid_);
    meter_.snapState(io);
    for (auto &d : domains_)
        d->snapState(io);
    mailbox_->snapState(io);
    spinlocks_->snapState(io);
    dma_->snapState(io);
}

void
Soc::registerMetrics(obs::MetricsRegistry &reg) const
{
    mailbox_->registerMetrics(reg, "soc.mailbox");
    reg.addGauge("soc.dma.transfers", [this]() {
        return static_cast<double>(dma_->transfersCompleted());
    });
    reg.addGauge("soc.dma.bytes", [this]() {
        return static_cast<double>(dma_->bytesMoved());
    });
    reg.addGauge("soc.spinlock.acquisitions", [this]() {
        return static_cast<double>(spinlocks_->acquisitions());
    });
    reg.addGauge("soc.spinlock.contended_polls", [this]() {
        return static_cast<double>(spinlocks_->contendedPolls());
    });
    for (DomainId d = 0; d < domains_.size(); ++d) {
        const CoherenceDomain &dom = *domains_[d];
        const std::string dp = sim::strPrintf("soc.domain%u", d);
        reg.addGauge(dp + ".irq.delivered", [&dom]() {
            return static_cast<double>(dom.irqCtrl().delivered());
        });
        reg.addGauge(dp + ".irq.masked_drops", [&dom]() {
            return static_cast<double>(dom.irqCtrl().maskedDrops());
        });
        for (std::size_t c = 0; c < dom.numCores(); ++c) {
            const Core &core = dom.core(c);
            const std::string cp = sim::strPrintf("%s.core%zu", dp.c_str(), c);
            reg.addGauge(cp + ".wakeups", [&core]() {
                return static_cast<double>(core.wakeups());
            });
            reg.addGauge(cp + ".instructions", [&core]() {
                return static_cast<double>(core.instructionsRetired());
            });
            reg.addGauge(cp + ".active_us", [&core]() {
                return sim::toUsec(core.activeTime());
            });
            reg.addGauge(cp + ".idle_us", [&core]() {
                return sim::toUsec(core.idleTime());
            });
            reg.addGauge(cp + ".inactive_us", [&core]() {
                return sim::toUsec(core.inactiveTime());
            });
        }
    }
    for (RailId r = 0; r < meter_.numRails(); ++r) {
        const std::string rp = "soc.power." + meter_.railName(r);
        const EnergyMeter &meter = meter_;
        reg.addGauge(rp + ".energy_uj",
                     [&meter, r]() { return meter.energyUj(r); });
        reg.addGauge(rp + ".power_mw",
                     [&meter, r]() { return meter.powerMw(r); });
    }
}

} // namespace soc
} // namespace k2
