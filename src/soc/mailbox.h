/**
 * @file
 * Hardware mailboxes for inter-domain communication.
 *
 * Modelled on the OMAP4 mailbox block: a core in one domain posts a
 * 32-bit mail addressed to another domain; after the wire latency the
 * mail is appended to the receiving domain's FIFO and the receiving
 * domain's private mailbox interrupt (kIrqMailbox) fires.
 *
 * Ordering contract: delivery is in-order **per sender-receiver
 * pair** -- mails posted from domain A to domain B are read by B in
 * the order A posted them, which is the guarantee the OMAP4 block's
 * per-direction hardware FIFOs give. Mails from *different* senders to
 * the same receiver interleave by arrival time with no cross-sender
 * guarantee. Each (sender, receiver) pair owns an in-flight channel
 * queue, so the guarantee holds structurally even if transit events
 * were reordered.
 *
 * The paper measures the message round trip at ~5 us; the default
 * one-way latency is half that.
 */

#ifndef K2_SOC_MAILBOX_H
#define K2_SOC_MAILBOX_H

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "sim/engine.h"
#include "sim/stats.h"
#include "soc/config.h"

namespace k2 {
namespace obs {
class MetricsRegistry;
}
namespace fault {
class FaultInjector;
}

namespace soc {

class InterruptController;

/** A received mail: the sender's domain and the 32-bit payload. */
struct Mail
{
    DomainId from;
    std::uint32_t word;

    bool operator==(const Mail &) const = default;
};

class MailboxNet
{
  public:
    /**
     * @param eng Simulation engine.
     * @param num_domains Number of coherence domains.
     * @param one_way One-way message latency.
     */
    MailboxNet(sim::Engine &eng, std::size_t num_domains,
               sim::Duration one_way);

    /**
     * Attach the receiving-side interrupt controller for @p domain.
     * Mails arriving for that domain raise kIrqMailbox on it.
     */
    void attachController(DomainId domain, InterruptController *ctrl);

    /**
     * Post a 32-bit mail from @p from to @p to.
     *
     * Delivery is asynchronous (after the one-way latency) and
     * in-order per sender-receiver pair (see the file comment).
     */
    void send(DomainId from, DomainId to, std::uint32_t word);

    /** Pop the oldest pending mail for @p domain, if any. */
    std::optional<Mail> tryRead(DomainId domain);

    /** Number of mails waiting for @p domain. */
    std::size_t pending(DomainId domain) const;

    /** Total mails delivered so far. */
    std::uint64_t messagesDelivered() const { return delivered_.value(); }

    sim::Duration oneWayLatency() const { return oneWay_; }

    /** Register this net's stats under @p prefix (e.g. "soc.mailbox"). */
    void registerMetrics(obs::MetricsRegistry &reg,
                         const std::string &prefix) const;

    /**
     * Attach a fault injector consulted at each delivery (drop,
     * duplicate, bit-flip, crashed-endpoint drop, stall deferral).
     * Null (the default) keeps delivery on the exact zero-fault path.
     */
    void setFaultInjector(fault::FaultInjector *inj) { fault_ = inj; }

    /**
     * Capture/restore receive FIFOs and traffic counters. In-flight
     * mail is impossible at quiescence (every posted word has a pending
     * arrival event), so the per-pair channels are only asserted empty.
     */
    void snapState(snap::Io &io);

  private:
    /** Deliver the oldest in-flight mail of the (from, to) channel. */
    void deliver(DomainId from, DomainId to);

    std::size_t
    chanIdx(DomainId from, DomainId to) const
    {
        return static_cast<std::size_t>(from) * fifos_.size() + to;
    }

    sim::Engine &engine_;
    sim::Duration oneWay_;
    std::vector<std::deque<Mail>> fifos_;
    /** Per (sender, receiver) pair: mails posted but not yet arrived. */
    std::vector<std::deque<std::uint32_t>> inflight_;
    std::vector<InterruptController *> ctrls_;
    std::vector<sim::TrackId> tracks_; //!< Per-receiver span track.
    fault::FaultInjector *fault_ = nullptr;
    sim::Counter delivered_;
    sim::Counter sent_;
};

} // namespace soc
} // namespace k2

#endif // K2_SOC_MAILBOX_H
