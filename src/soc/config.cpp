#include "soc/config.h"

#include "sim/log.h"

namespace k2 {
namespace soc {

void
SocConfig::validate() const
{
    if (domains.empty())
        K2_FATAL("SoC '%s' has no coherence domains", name.c_str());
    if (pageBytes == 0 || (pageBytes & (pageBytes - 1)) != 0)
        K2_FATAL("page size %zu is not a power of two", pageBytes);
    if (ramBytes % pageBytes != 0)
        K2_FATAL("RAM size %zu is not page aligned", ramBytes);
    for (const auto &d : domains) {
        if (d.numCores == 0)
            K2_FATAL("domain '%s' has no cores", d.name.c_str());
        if (d.core.points.empty())
            K2_FATAL("core '%s' has no operating points",
                     d.core.name.c_str());
        if (d.core.defaultPoint >= d.core.points.size())
            K2_FATAL("core '%s' default operating point out of range",
                     d.core.name.c_str());
        if (d.core.instrPerCycle <= 0.0)
            K2_FATAL("core '%s' has non-positive IPC", d.core.name.c_str());
        for (const auto &p : d.core.points) {
            if (p.hz == 0)
                K2_FATAL("core '%s' has a 0 Hz operating point",
                         d.core.name.c_str());
        }
    }
}

SocConfig
omap4Config()
{
    SocConfig cfg;
    cfg.name = "TI OMAP4 (simulated)";

    DomainSpec strong;
    strong.name = "strong";
    strong.numCores = 2;
    strong.core.name = "Cortex-A9";
    strong.core.isa = "ARM";
    // Table 3: 79.8 mW active at 350 MHz, 672 mW at 1200 MHz. Fill the
    // DVFS ladder between them with a roughly cubic power curve.
    strong.core.points = {
        {350000000ull, 79.8},
        {700000000ull, 205.0},
        {920000000ull, 374.0},
        {1200000000ull, 672.0},
    };
    strong.core.defaultPoint = 0;
    strong.core.instrPerCycle = 1.0;
    strong.core.memBytesPerSec = 1.4e9;
    strong.core.idleMw = 25.2;
    strong.core.inactiveMw = 0.05;
    strong.core.wakeLatency = sim::usec(150);
    strong.core.wakeEnergyUj = 30.0;
    strong.core.mmu = MmuKind::SingleLevel;
    strong.core.l1TlbEntries = 32;
    strong.cacheLineFlush = sim::nsec(60);
    strong.cacheLineBytes = 32;
    // SCU + L2 + coherent interconnect of the A9 cluster.
    strong.uncoreActiveMw = 20.0;
    strong.irqEntryInstr = 300;

    DomainSpec weak;
    weak.name = "weak";
    // OMAP4 has dual M3 cores but one is reserved; K2's shadow kernel
    // runs on a single M3.
    weak.numCores = 1;
    weak.core.name = "Cortex-M3";
    weak.core.isa = "Thumb-2";
    weak.core.points = {
        {100000000ull, 11.5},
        {200000000ull, 21.1},
    };
    // The paper fixes the M3 at its *least* efficient point (200 MHz)
    // because OMAP4 couples its voltage rail with the interconnect.
    weak.core.defaultPoint = 1;
    weak.core.instrPerCycle = 0.8;
    weak.core.kernelCostFactor = 5.0;
    weak.core.memBytesPerSec = 0.3e9;
    weak.core.idleMw = 3.8;
    weak.core.inactiveMw = 0.05;
    weak.core.wakeLatency = sim::usec(20);
    weak.core.wakeEnergyUj = 1.0;
    weak.core.mmu = MmuKind::CascadedTwoLevel;
    weak.core.l1TlbEntries = 10; // ten 4KB entries (paper §6.3).
    weak.cacheLineFlush = sim::nsec(120);
    weak.cacheLineBytes = 32;
    // No coherent fabric on the M3 side; just its bus interface.
    weak.uncoreActiveMw = 1.5;
    // Cortex-M3 interrupt entry is hardware-stacked (12 cycles) plus
    // a lean dispatcher.
    weak.irqEntryInstr = 80;

    cfg.domains = {strong, weak};
    cfg.validate();
    return cfg;
}

SocConfig
threeDomainConfig()
{
    SocConfig cfg = omap4Config();
    cfg.name = "three-domain SoC (simulated)";

    DomainSpec hub;
    hub.name = "hub";
    hub.numCores = 1;
    hub.core.name = "Cortex-M0";
    hub.core.isa = "Thumb";
    hub.core.points = {{60000000ull, 5.8}};
    hub.core.defaultPoint = 0;
    hub.core.instrPerCycle = 0.6;
    hub.core.kernelCostFactor = 6.0;
    hub.core.memBytesPerSec = 0.08e9;
    hub.core.idleMw = 0.9;
    hub.core.inactiveMw = 0.02;
    hub.core.wakeLatency = sim::usec(8);
    hub.core.wakeEnergyUj = 0.2;
    hub.core.mmu = MmuKind::CascadedTwoLevel;
    hub.core.l1TlbEntries = 8;
    hub.cacheLineFlush = sim::nsec(200);
    hub.cacheLineBytes = 32;
    hub.uncoreActiveMw = 0.5;
    hub.irqEntryInstr = 40;

    cfg.domains.push_back(hub);
    cfg.validate();
    return cfg;
}

} // namespace soc
} // namespace k2
