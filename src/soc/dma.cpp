#include "soc/dma.h"

#include "fault/injector.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace soc {

DmaEngine::DmaEngine(sim::Engine &eng, const PlatformCosts &costs,
                     std::size_t channels)
    : engine_(eng), costs_(costs), channelBusy_(channels, false)
{}

bool
DmaEngine::channelBusy(std::size_t chan) const
{
    K2_ASSERT(chan < channelBusy_.size());
    return channelBusy_[chan];
}

sim::Duration
DmaEngine::transferTime(std::uint64_t bytes) const
{
    const double seconds =
        static_cast<double>(bytes) / costs_.dmaBandwidth;
    return costs_.dmaSetup +
           static_cast<sim::Duration>(seconds * 1e12);
}

void
DmaEngine::program(std::size_t chan, std::uint64_t bytes)
{
    K2_ASSERT(chan < channelBusy_.size());
    if (channelBusy_[chan])
        K2_PANIC("DMA channel %zu programmed while busy", chan);
    channelBusy_[chan] = true;
    queue_.push_back(Request{chan, bytes});
    if (!serving_) {
        serving_ = true;
        engine_.spawn(serve());
    }
}

sim::Task<void>
DmaEngine::serve()
{
    while (!queue_.empty()) {
        const Request req = queue_.front();
        queue_.pop_front();
        co_await engine_.sleep(transferTime(req.bytes));
        channelBusy_[req.chan] = false;
        const std::uint64_t bit =
            (req.chan < 64) ? (1ull << req.chan) : 0;
        statusBits_ |= bit;
        completed_.inc();
        const bool errored = fault_ && fault_->onDmaTransfer();
        if (errored)
            errorBits_ |= bit;
        else
            bytes_.inc(req.bytes);
        if (fault_ && fault_->onDmaCompletionIrq())
            continue; // Completion IRQ pulse lost; status stays latched.
        if (irq_)
            irq_();
    }
    serving_ = false;
}

void
DmaEngine::snapState(snap::Io &io)
{
    // Quiescence: the mover coroutine has drained and exited.
    K2_ASSERT(queue_.empty());
    K2_ASSERT(!serving_);
    io.check(channelBusy_.size(), "DmaEngine::channels");
    for (std::size_t i = 0; i < channelBusy_.size(); ++i) {
        std::uint8_t busy = channelBusy_[i] ? 1 : 0;
        io.pod(busy);
        if (io.restoring())
            channelBusy_[i] = (busy != 0);
    }
    io.pod(statusBits_);
    io.pod(errorBits_);
    io.pod(completed_);
    io.pod(bytes_);
}

std::uint64_t
DmaEngine::readStatus()
{
    const std::uint64_t bits = statusBits_;
    statusBits_ = 0;
    return bits;
}

std::uint64_t
DmaEngine::readErrors()
{
    const std::uint64_t bits = errorBits_;
    errorBits_ = 0;
    return bits;
}

} // namespace soc
} // namespace k2
