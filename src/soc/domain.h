/**
 * @file
 * A coherence domain: a set of homogeneous cores with hardware cache
 * coherence among them, a private interrupt controller, and a private
 * cache whose contents must be explicitly flushed to be visible to
 * other domains.
 */

#ifndef K2_SOC_DOMAIN_H
#define K2_SOC_DOMAIN_H

#include <memory>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "soc/config.h"
#include "soc/core.h"
#include "soc/irq.h"

namespace k2 {
namespace soc {

class CoherenceDomain
{
  public:
    CoherenceDomain(sim::Engine &eng, EnergyMeter &meter,
                    const DomainSpec &spec, const PlatformCosts &costs,
                    DomainId id, std::size_t num_irq_lines,
                    CoreId first_core_id);

    CoherenceDomain(const CoherenceDomain &) = delete;
    CoherenceDomain &operator=(const CoherenceDomain &) = delete;

    DomainId id() const { return id_; }
    const std::string &name() const { return spec_.name; }
    const DomainSpec &spec() const { return spec_; }
    RailId rail() const { return rail_; }

    std::size_t numCores() const { return cores_.size(); }
    Core &core(std::size_t i) { return *cores_.at(i); }
    const Core &core(std::size_t i) const { return *cores_.at(i); }

    InterruptController &irqCtrl() { return *irqCtrl_; }
    const InterruptController &irqCtrl() const { return *irqCtrl_; }

    /** True if every core in the domain is power-gated. */
    bool allInactive() const;

    /**
     * Time for a core of this domain to flush+invalidate @p bytes of
     * dirty cache to RAM (used by the DSM on PutExclusive).
     */
    sim::Duration flushTime(std::size_t bytes) const;

    /**
     * Time to refill @p bytes from RAM after an invalidation (the
     * "cache miss on exit" component of a DSM fault).
     */
    sim::Duration refillTime(std::size_t bytes) const;

    /** Capture/restore all cores and the interrupt controller. */
    void snapState(snap::Io &io);

  private:
    sim::Engine &engine_;
    DomainSpec spec_;
    DomainId id_;
    RailId rail_;
    std::uint32_t uncoreClient_ = 0;
    std::vector<std::unique_ptr<Core>> cores_;
    std::unique_ptr<InterruptController> irqCtrl_;
};

} // namespace soc
} // namespace k2

#endif // K2_SOC_DOMAIN_H
