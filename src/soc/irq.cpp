#include "soc/irq.h"

#include "fault/injector.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace soc {

InterruptController::InterruptController(sim::Engine &eng,
                                         std::vector<Core *> cores,
                                         std::size_t num_lines,
                                         std::uint64_t entry_instr)
    : engine_(eng), cores_(std::move(cores)), lines_(num_lines),
      entryInstr_(entry_instr)
{
    K2_ASSERT(!cores_.empty());
}

void
InterruptController::registerHandler(IrqLine line, IrqHandler handler)
{
    K2_ASSERT(line < lines_.size());
    lines_[line].handler = std::move(handler);
    setMasked(line, false);
}

void
InterruptController::setMasked(IrqLine line, bool masked)
{
    K2_ASSERT(line < lines_.size());
    Line &l = lines_[line];
    l.masked = masked;
    if (!masked && l.pending && l.handler) {
        l.pending = false;
        delivered_.inc();
        engine_.spawn(deliver(line));
    }
}

bool
InterruptController::isMasked(IrqLine line) const
{
    K2_ASSERT(line < lines_.size());
    return lines_[line].masked;
}

bool
InterruptController::hasHandler(IrqLine line) const
{
    K2_ASSERT(line < lines_.size());
    return static_cast<bool>(lines_[line].handler);
}

bool
InterruptController::raise(IrqLine line)
{
    K2_ASSERT(line < lines_.size());
    if (fault_) {
        // A stalled domain sees the line once it resumes: level
        // signals persist at the controller, so re-raise at stall end
        // rather than dropping.
        const sim::Time stall_end = fault_->stallEnd(domainId_);
        if (stall_end > engine_.now()) {
            engine_.at(stall_end, [this, line]() { raise(line); });
            return false;
        }
        // Crashed domain (all raises lost) or an injected lost edge.
        if (fault_->onIrqRaise(domainId_, line))
            return false;
    }
    Line &l = lines_[line];
    if (!l.handler) {
        maskedDrops_.inc();
        return false;
    }
    if (l.masked) {
        // Latched; fires on unmask (standard level-triggered GIC
        // behaviour).
        l.pending = true;
        maskedDrops_.inc();
        return false;
    }
    delivered_.inc();
    engine_.spawn(deliver(line));
    return true;
}

void
InterruptController::reset()
{
    for (Line &l : lines_) {
        l.handler = nullptr;
        l.masked = true;
        l.pending = false;
    }
}

void
InterruptController::snapState(snap::Io &io)
{
    io.check(lines_.size(), "InterruptController::lines");
    for (Line &l : lines_) {
        io.check(l.handler ? 1 : 0, "InterruptController::handler");
        io.pod(l.masked);
        io.pod(l.pending);
    }
    io.pod(delivered_);
    io.pod(maskedDrops_);
}

Core &
InterruptController::pickTargetCore()
{
    // Prefer an idle (but awake) core so we interrupt running work as
    // rarely as possible; otherwise an active core; otherwise wake
    // core 0.
    for (Core *c : cores_) {
        if (c->state() == PowerState::Idle)
            return *c;
    }
    for (Core *c : cores_) {
        if (c->state() == PowerState::Active)
            return *c;
    }
    return *cores_.front();
}

sim::Task<void>
InterruptController::deliver(IrqLine line)
{
    Core &core = pickTargetCore();
    if (!core.awake())
        co_await core.ensureAwake();
    co_await core.exec(entryInstr_);
    // The handler may have been replaced, but never removed, since
    // raise(); re-read it.
    co_await lines_[line].handler(core);
}

} // namespace soc
} // namespace k2
