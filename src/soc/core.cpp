#include "soc/core.h"

#include <algorithm>

#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace soc {

const char *
powerStateName(PowerState s)
{
    switch (s) {
      case PowerState::Active:
        return "active";
      case PowerState::Idle:
        return "idle";
      case PowerState::Inactive:
        return "inactive";
    }
    return "?";
}

Core::Core(sim::Engine &eng, EnergyMeter &meter, RailId rail,
           const CoreSpec &spec, const PlatformCosts &costs, CoreId id,
           DomainId domain)
    : engine_(eng), meter_(meter), rail_(rail), spec_(spec), costs_(costs),
      id_(id), domain_(domain), point_(spec.defaultPoint),
      track_(eng.addTrack(
          sim::strPrintf("soc.domain%u.core%u.power", domain, id))),
      wakeDone_(eng)
{
    client_ = meter_.addClient(rail_, powerFor(state_));
    lastStateChange_ = engine_.now();
    // Treat boot as thread activity so a fresh core follows the full
    // inactive timeout.
    lastThreadActivity_ = engine_.now();
    armInactiveTimer();
}

double
Core::powerFor(PowerState s) const
{
    switch (s) {
      case PowerState::Active:
        return spec_.points[point_].activeMw;
      case PowerState::Idle:
        return spec_.idleMw;
      case PowerState::Inactive:
        return spec_.inactiveMw;
    }
    return 0.0;
}

void
Core::setOperatingPoint(std::size_t idx)
{
    if (idx >= spec_.points.size())
        K2_FATAL("core %u: operating point %zu out of range", id_, idx);
    point_ = idx;
    meter_.setClientPower(rail_, client_, powerFor(state_));
}

sim::Duration
Core::instrTime(std::uint64_t instructions) const
{
    const auto cycles = static_cast<std::uint64_t>(
        static_cast<double>(instructions) / spec_.instrPerCycle + 0.5);
    return sim::cyclesToTime(cycles ? cycles : 1, hz());
}

void
Core::setState(PowerState s)
{
    if (s == state_)
        return;
    const sim::Time now = engine_.now();
    // Emit the residency interval that just ended as a complete span,
    // so the exported timeline shows one row of active/idle/inactive
    // segments per core.
    if (now > lastStateChange_ && engine_.tracer().spansOn())
        engine_.tracer().spanComplete(lastStateChange_,
                                      now - lastStateChange_, track_,
                                      powerStateName(state_));
    residency_[static_cast<int>(state_)] += now - lastStateChange_;
    lastStateChange_ = now;
    state_ = s;
    meter_.setClientPower(rail_, client_, powerFor(state_));
    for (const auto &fn : listeners_)
        fn(state_);
}

void
Core::noteThreadActivity()
{
    lastThreadActivity_ = engine_.now();
    if (state_ == PowerState::Idle)
        armInactiveTimer();
}

void
Core::armInactiveTimer()
{
    engine_.cancel(inactiveTimer_);
    // A zero timeout disables power gating entirely (useful for
    // protocol microbenchmarks).
    if (costs_.inactiveTimeout == 0)
        return;
    // A core that ran a thread stays up for the full timeout counted
    // from the last thread activity; a core woken only for interrupt
    // work re-gates quickly (cpuidle model).
    const sim::Time now = engine_.now();
    const sim::Time thread_deadline =
        lastThreadActivity_ + costs_.inactiveTimeout;
    const sim::Time irq_deadline = now + costs_.irqRegateTimeout;
    const sim::Time deadline = std::max(thread_deadline, irq_deadline);
    const std::uint64_t epoch = ++idleEpoch_;
    inactiveTimer_ = engine_.at(deadline, [this, epoch]() {
        if (epoch == idleEpoch_ && busyCount_ == 0 && !waking_ &&
            state_ == PowerState::Idle) {
            setState(PowerState::Inactive);
        }
    });
}

void
Core::beginBusy()
{
    K2_ASSERT(state_ != PowerState::Inactive);
    if (busyCount_++ == 0) {
        engine_.cancel(inactiveTimer_);
        ++idleEpoch_;
        setState(PowerState::Active);
    }
}

void
Core::endBusy()
{
    K2_ASSERT(busyCount_ > 0);
    if (--busyCount_ == 0) {
        setState(PowerState::Idle);
        armInactiveTimer();
    }
}

sim::Task<void>
Core::ensureAwake()
{
    while (state_ == PowerState::Inactive || waking_) {
        if (waking_) {
            co_await wakeDone_.wait();
            continue;
        }
        waking_ = true;
        wakeDone_.reset();
        wakeups_.inc();
        meter_.addPulse(rail_, spec_.wakeEnergyUj);
        // During the wake transition the core draws active power (the
        // paper's "high penalty in entering/exiting active power
        // state").
        setState(PowerState::Active);
        co_await engine_.sleep(spec_.wakeLatency);
        waking_ = false;
        if (busyCount_ == 0) {
            setState(PowerState::Idle);
            armInactiveTimer();
        }
        wakeDone_.set();
    }
}

sim::Task<void>
Core::exec(std::uint64_t instructions)
{
    if (!awake())
        co_await ensureAwake();
    beginBusy();
    instrs_.inc(instructions);
    co_await engine_.sleep(instrTime(instructions));
    endBusy();
}

sim::Task<void>
Core::execTime(sim::Duration d)
{
    if (!awake())
        co_await ensureAwake();
    beginBusy();
    co_await engine_.sleep(d);
    endBusy();
}

void
Core::snapState(snap::Io &io)
{
    io.check(client_, "Core::client");
    io.check(track_, "Core::track");
    io.pod(point_);
    io.pod(state_);
    io.pod(busyCount_);
    io.pod(waking_);
    wakeDone_.snapState(io);
    // The (stale at quiescence) timer handle participates in the next
    // cancel()'s generation comparison, so restore it bit-exactly.
    io.pod(inactiveTimer_);
    io.pod(idleEpoch_);
    io.pod(lastThreadActivity_);
    io.pod(lastStateChange_);
    for (auto &r : residency_)
        io.pod(r);
    io.pod(wakeups_);
    io.pod(instrs_);
}

sim::Duration
Core::activeTime() const
{
    const sim::Time now = engine_.now();
    residency_[static_cast<int>(state_)] += now - lastStateChange_;
    lastStateChange_ = now;
    return residency_[static_cast<int>(PowerState::Active)];
}

sim::Duration
Core::idleTime() const
{
    activeTime(); // settle
    return residency_[static_cast<int>(PowerState::Idle)];
}

sim::Duration
Core::inactiveTime() const
{
    activeTime(); // settle
    return residency_[static_cast<int>(PowerState::Inactive)];
}

} // namespace soc
} // namespace k2
