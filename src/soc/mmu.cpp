#include "soc/mmu.h"

#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace soc {

std::uint64_t
pagesPerEntry(MapGrain grain)
{
    switch (grain) {
      case MapGrain::Page4K:
        return 1;
      case MapGrain::Section1M:
        return 256;
      case MapGrain::Super16M:
        return 4096;
    }
    return 1;
}

bool
Tlb::access(std::uint64_t tag)
{
    if (present_.count(tag)) {
        hits_.inc();
        return true;
    }
    misses_.inc();
    if (fifo_.size() >= capacity_) {
        present_.erase(fifo_.front());
        fifo_.pop_front();
    }
    fifo_.push_back(tag);
    present_.insert(tag);
    return false;
}

void
Tlb::invalidate(std::uint64_t tag)
{
    if (!present_.count(tag))
        return;
    present_.erase(tag);
    for (auto it = fifo_.begin(); it != fifo_.end(); ++it) {
        if (*it == tag) {
            fifo_.erase(it);
            break;
        }
    }
}

void
Tlb::flushAll()
{
    fifo_.clear();
    present_.clear();
}

void
Tlb::snapState(snap::Io &io)
{
    io.check(capacity_, "Tlb::capacity");
    io.podDeque(fifo_);
    if (io.restoring()) {
        present_.clear();
        for (std::uint64_t tag : fifo_)
            present_.insert(tag);
    }
    io.pod(hits_);
    io.pod(misses_);
}

void
Mmu::snapState(snap::Io &io)
{
    tlb_.snapState(io);
}

Mmu::Mmu(const CoreSpec &spec)
    : kind_(spec.mmu), tlb_(spec.l1TlbEntries)
{
    // A hardware walker resolves a miss in roughly a cache-miss pair;
    // the M3's cascaded arrangement takes a software reload of the
    // first level plus the second level's hardware walk.
    switch (kind_) {
      case MmuKind::SingleLevel:
        walkCost_ = sim::nsec(80);
        ptUpdateCost_ = sim::nsec(150);
        break;
      case MmuKind::CascadedTwoLevel:
        walkCost_ = sim::nsec(400);
        ptUpdateCost_ = sim::nsec(600);
        break;
    }
}

sim::Duration
Mmu::translate(Vpn vpn, MapGrain grain)
{
    const std::uint64_t tag = vpn / pagesPerEntry(grain);
    if (tlb_.access(tag))
        return 0;
    return walkCost_;
}

sim::Duration
Mmu::protectionUpdate(Vpn vpn)
{
    tlb_.invalidate(vpn);
    return ptUpdateCost_;
}

sim::Duration
Mmu::readTrackPenalty() const
{
    if (kind_ == MmuKind::SingleLevel)
        return 0;
    // Every read-tracked page competes for the ten software-loaded
    // first-level entries; the paper reports "severe thrashing". Model
    // the steady-state cost as reloading most of the first level.
    return sim::usec(25);
}

} // namespace soc
} // namespace k2
