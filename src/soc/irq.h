/**
 * @file
 * Per-domain interrupt controller.
 *
 * Each coherence domain has a private interrupt controller (as on
 * OMAP4). IO-peripheral interrupts are physically wired to all domains;
 * a controller only delivers a line if it is locally unmasked and a
 * handler is registered. K2's interrupt management (§7) works by
 * flipping per-domain masks so exactly one kernel handles each shared
 * interrupt.
 */

#ifndef K2_SOC_IRQ_H
#define K2_SOC_IRQ_H

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "soc/core.h"

namespace k2 {
namespace fault {
class FaultInjector;
}
namespace soc {

/** An interrupt line number. */
using IrqLine = std::uint32_t;

/** Well-known line assignments on the simulated platform. @{ */
inline constexpr IrqLine kIrqDma = 1;      //!< Shared: DMA completion.
inline constexpr IrqLine kIrqBlock = 2;    //!< Shared: block device.
inline constexpr IrqLine kIrqNet = 3;      //!< Shared: network softirq.
inline constexpr IrqLine kIrqMailbox = 40; //!< Private: mailbox arrival.
/** @} */

/**
 * Handler invoked in interrupt context on a core of the domain.
 */
using IrqHandler = std::function<sim::Task<void>(Core &)>;

class InterruptController
{
  public:
    /**
     * @param eng Simulation engine.
     * @param cores The domain's cores (not owned).
     * @param num_lines Number of interrupt lines.
     * @param entry_instr Reference instructions charged for exception
     *        entry/exit around every delivered interrupt.
     */
    InterruptController(sim::Engine &eng, std::vector<Core *> cores,
                        std::size_t num_lines,
                        std::uint64_t entry_instr = 300);

    /** Register (and unmask) a handler for @p line. */
    void registerHandler(IrqLine line, IrqHandler handler);

    /** Mask or unmask a line. Unmasking may fire a pending interrupt. */
    void setMasked(IrqLine line, bool masked);

    bool isMasked(IrqLine line) const;
    bool hasHandler(IrqLine line) const;

    /**
     * Raise a line on this controller.
     *
     * @return true if the interrupt was accepted for delivery; false if
     *         it was masked (it is then latched pending) or has no
     *         handler (dropped).
     */
    bool raise(IrqLine line);

    /** @name Statistics. @{ */
    std::uint64_t delivered() const { return delivered_.value(); }
    std::uint64_t maskedDrops() const { return maskedDrops_.value(); }
    /** @} */

    /**
     * Attach a fault injector; @p domain_id tells it which domain's
     * clauses (lost IRQ, stall, crash) apply to this controller.
     */
    void
    setFaultInjector(fault::FaultInjector *inj, std::uint32_t domain_id)
    {
        fault_ = inj;
        domainId_ = domain_id;
    }

    /**
     * Hardware reset: drop every handler, mask and clear every line.
     * Used when recovery restarts a crashed domain's kernel, which then
     * re-registers its handlers from scratch.
     */
    void reset();

    /**
     * Capture/restore per-line mask/pending bits and delivery counts.
     * Registered handlers are structural (they stay in place across a
     * restore); only their presence is verified.
     */
    void snapState(snap::Io &io);

  private:
    sim::Task<void> deliver(IrqLine line);
    Core &pickTargetCore();

    struct Line
    {
        IrqHandler handler;
        bool masked = true;
        bool pending = false;
    };

    sim::Engine &engine_;
    std::vector<Core *> cores_;
    std::vector<Line> lines_;
    std::uint64_t entryInstr_;
    fault::FaultInjector *fault_ = nullptr;
    std::uint32_t domainId_ = 0;
    sim::Counter delivered_;
    sim::Counter maskedDrops_;
};

} // namespace soc
} // namespace k2

#endif // K2_SOC_IRQ_H
