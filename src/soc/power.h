/**
 * @file
 * Energy accounting: the simulated equivalent of sampling current on
 * the board's per-domain power rails.
 *
 * Each consumer (a core) is a "rail client" that reports its draw in
 * milliwatts whenever it changes state; the meter integrates power over
 * simulated time exactly. Benches snapshot the meter before and after a
 * run to obtain per-episode energy.
 */

#ifndef K2_SOC_POWER_H
#define K2_SOC_POWER_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/time.h"

namespace k2 {
namespace soc {

/** Identifies one power rail (one per coherence domain). */
using RailId = std::uint32_t;

/**
 * Integrates power-over-time per rail.
 */
class EnergyMeter
{
  public:
    explicit EnergyMeter(sim::Engine &eng)
        : engine_(eng)
    {}

    /** Create a rail and return its id. */
    RailId addRail(std::string name);

    /** Create a client on @p rail; returns the client id. */
    std::uint32_t addClient(RailId rail, double initial_mw);

    /** Report that a client's draw changed to @p mw. */
    void setClientPower(RailId rail, std::uint32_t client, double mw);

    /** Add a one-off energy cost (e.g. a wakeup) to a rail. */
    void addPulse(RailId rail, double uj);

    /** Total energy drawn by a rail so far, in microjoules. */
    double energyUj(RailId rail) const;

    /** Total energy across all rails, in microjoules. */
    double totalEnergyUj() const;

    /** Instantaneous power on a rail, in milliwatts. */
    double powerMw(RailId rail) const;

    /** Name of a rail. */
    const std::string &railName(RailId rail) const;

    std::size_t numRails() const { return rails_.size(); }

    /**
     * A snapshot of all rail energies, for measuring an interval.
     */
    class Snapshot
    {
      public:
        Snapshot() = default;

        /** Energy drawn on @p rail since the snapshot, in uJ. */
        double railUj(const EnergyMeter &meter, RailId rail) const;

        /** Energy drawn on all rails since the snapshot, in uJ. */
        double totalUj(const EnergyMeter &meter) const;

      private:
        friend class EnergyMeter;
        std::vector<double> energies_;
    };

    /** Capture the current accumulated energies. */
    Snapshot snapshot() const;

    /** Capture/restore per-rail energy integrals and client draws. */
    void snapState(snap::Io &io);

  private:
    struct Rail
    {
        std::string name;
        std::vector<double> clientMw;
        double totalMw = 0.0;
        double accumulatedUj = 0.0;
        sim::Time lastChange = 0;
        sim::TrackId track = 0; //!< Span track for the power counter.
    };

    /** Fold elapsed time at the current power into the accumulator. */
    void settle(Rail &rail) const;

    sim::Engine &engine_;
    mutable std::vector<Rail> rails_;
};

} // namespace soc
} // namespace k2

#endif // K2_SOC_POWER_H
