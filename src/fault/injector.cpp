#include "fault/injector.h"

#include "obs/metrics.h"
#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace fault {

FaultInjector::FaultInjector(sim::Engine &eng, FaultPlan plan)
    : engine_(eng), plan_(std::move(plan)), rng_(plan_.seed)
{
    for (const FaultSpec &fs : plan_.specs()) {
        const auto idx = clauses_.size();
        clauses_.push_back(ClauseState{fs});
        byKind_[static_cast<std::size_t>(fs.kind)].push_back(idx);
    }
    // The injector only exists when a plan (or forced recovery) is
    // configured, so this track never appears in zero-fault traces.
    track_ = engine_.addTrack("fault");
}

void
FaultInjector::arm(IrqRaiser raiser)
{
    raiser_ = std::move(raiser);
    // Spurious IRQs are raised by the plan itself, not triggered by
    // traffic, so they are the one kind that schedules events. One
    // event per clause; fires once.
    for (std::size_t idx :
         byKind_[static_cast<std::size_t>(FaultKind::IrqSpurious)]) {
        ClauseState &c = clauses_[idx];
        const std::uint32_t domain =
            c.spec.domain == kAnyDomain ? 0 : c.spec.domain;
        const std::uint32_t line = c.spec.line;
        engine_.at(c.spec.at, [this, domain, line] {
            note(FaultKind::IrqSpurious, domain);
            raiser_(domain, line);
        });
    }
}

bool
FaultInjector::decide(FaultKind kind, std::uint32_t domain,
                      std::uint32_t line)
{
    for (std::size_t idx : byKind_[static_cast<std::size_t>(kind)]) {
        ClauseState &c = clauses_[idx];
        if (c.spec.domain != kAnyDomain && domain != kAnyDomain &&
            c.spec.domain != domain)
            continue;
        if (c.spec.line != kAnyLine && line != kAnyLine &&
            c.spec.line != line)
            continue;
        if (c.burstLeft > 0) {
            --c.burstLeft;
            note(kind, domain);
            return true;
        }
        if (engine_.now() < c.spec.at)
            continue;
        if (c.spec.p > 0.0) {
            if (!rng_.chance(c.spec.p))
                continue;
        } else {
            if (c.fired)
                continue;
            c.fired = true;
        }
        c.burstLeft = c.spec.burst - 1;
        note(kind, domain);
        return true;
    }
    return false;
}

void
FaultInjector::note(FaultKind kind, std::uint32_t domain)
{
    injected_[static_cast<std::size_t>(kind)].inc();
    engine_.spanInstant(track_, faultKindName(kind),
                    domain == kAnyDomain
                        ? 0.0
                        : static_cast<double>(domain));
}

FaultInjector::MailFate
FaultInjector::onMailDeliver(std::uint32_t from, std::uint32_t to,
                             std::uint32_t &word)
{
    // A crashed endpoint neither sends nor receives.
    if (domainDown(from) || domainDown(to)) {
        crashMailDrops_.inc();
        engine_.spanInstant(track_, "crash.mail_drop",
                        static_cast<double>(to));
        return MailFate::Drop;
    }
    // Mail clauses filter on the destination domain.
    if (decide(FaultKind::MailBitFlip, to, kAnyLine)) {
        word ^= 1u << rng_.below(32);
        return MailFate::Corrupt;
    }
    if (decide(FaultKind::MailDrop, to, kAnyLine))
        return MailFate::Drop;
    if (decide(FaultKind::MailDuplicate, to, kAnyLine))
        return MailFate::Duplicate;
    return MailFate::Deliver;
}

bool
FaultInjector::onDmaTransfer()
{
    return decide(FaultKind::DmaTransferError, kAnyDomain, kAnyLine);
}

bool
FaultInjector::onDmaCompletionIrq()
{
    return decide(FaultKind::DmaIrqLoss, kAnyDomain, kAnyLine);
}

bool
FaultInjector::onIrqRaise(std::uint32_t domain, std::uint32_t line)
{
    if (domainDown(domain)) {
        crashIrqDrops_.inc();
        return true;
    }
    return decide(FaultKind::IrqLost, domain, line);
}

bool
FaultInjector::domainDown(std::uint32_t domain) const
{
    for (std::size_t idx :
         byKind_[static_cast<std::size_t>(FaultKind::DomainCrash)]) {
        const ClauseState &c = clauses_[idx];
        if (c.spec.domain == domain && !c.revived &&
            engine_.now() >= c.spec.at)
            return true;
    }
    return false;
}

sim::Time
FaultInjector::stallEnd(std::uint32_t domain) const
{
    for (std::size_t idx :
         byKind_[static_cast<std::size_t>(FaultKind::DomainStall)]) {
        const ClauseState &c = clauses_[idx];
        const sim::Time end = c.spec.at + c.spec.len;
        if (c.spec.domain == domain && engine_.now() >= c.spec.at &&
            engine_.now() < end)
            return end;
    }
    return 0;
}

sim::Time
FaultInjector::crashTime(std::uint32_t domain) const
{
    for (std::size_t idx :
         byKind_[static_cast<std::size_t>(FaultKind::DomainCrash)]) {
        const ClauseState &c = clauses_[idx];
        if (c.spec.domain == domain && !c.revived &&
            engine_.now() >= c.spec.at)
            return c.spec.at;
    }
    return 0;
}

void
FaultInjector::revive(std::uint32_t domain)
{
    for (std::size_t idx :
         byKind_[static_cast<std::size_t>(FaultKind::DomainCrash)]) {
        ClauseState &c = clauses_[idx];
        if (c.spec.domain == domain && engine_.now() >= c.spec.at) {
            c.revived = true;
            // Count the crash the moment software clears it; the
            // onset itself injects nothing until traffic hits it.
            note(FaultKind::DomainCrash, domain);
        }
    }
}

void
FaultInjector::snapState(snap::Io &io)
{
    io.check(track_, "FaultInjector::track");
    io.pod(rng_);
    io.check(clauses_.size(), "FaultInjector::clauses");
    for (ClauseState &c : clauses_) {
        io.pod(c.burstLeft);
        io.pod(c.fired);
        io.pod(c.revived);
    }
    io.pod(injected_);
    io.pod(crashMailDrops_);
    io.pod(crashIrqDrops_);
}

void
FaultInjector::registerMetrics(obs::MetricsRegistry &reg,
                               const std::string &prefix) const
{
    for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
        reg.addCounter(prefix + "." +
                           faultKindName(static_cast<FaultKind>(k)),
                       injected_[k]);
    }
    reg.addCounter(prefix + ".crash_mail_drops", crashMailDrops_);
    reg.addCounter(prefix + ".crash_irq_drops", crashIrqDrops_);
}

} // namespace fault
} // namespace k2
