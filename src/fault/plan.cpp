#include "fault/plan.h"

#include <cstdlib>

#include "sim/log.h"

namespace k2 {
namespace fault {

namespace {

struct KindName
{
    const char *name;
    FaultKind kind;
};

constexpr KindName kKindNames[kNumFaultKinds] = {
    {"mailbox.drop", FaultKind::MailDrop},
    {"mailbox.dup", FaultKind::MailDuplicate},
    {"mailbox.flip", FaultKind::MailBitFlip},
    {"dma.err", FaultKind::DmaTransferError},
    {"dma.irqloss", FaultKind::DmaIrqLoss},
    {"irq.lost", FaultKind::IrqLost},
    {"irq.spurious", FaultKind::IrqSpurious},
    {"domain.stall", FaultKind::DomainStall},
    {"domain.crash", FaultKind::DomainCrash},
};

bool
kindFromName(const std::string &name, FaultKind &out)
{
    for (const auto &kn : kKindNames) {
        if (name == kn.name) {
            out = kn.kind;
            return true;
        }
    }
    return false;
}

/** A scheduled condition, not a per-opportunity fault. */
bool
isScheduledKind(FaultKind k)
{
    return k == FaultKind::DomainStall || k == FaultKind::DomainCrash ||
           k == FaultKind::IrqSpurious;
}

/**
 * Value parsers carry the value's character offset in the original
 * spec so a rejected flag pinpoints the malformed field ("at char N"),
 * not just its text -- specs are long enough that the same token can
 * appear twice.
 */
std::uint64_t
parseUint(const std::string &v, const char *key, std::size_t at)
{
    char *end = nullptr;
    const std::uint64_t r = std::strtoull(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0')
        K2_FATAL("faults: bad integer '%s' for '%s' at char %zu",
                 v.c_str(), key, at);
    return r;
}

double
parseDouble(const std::string &v, const char *key, std::size_t at)
{
    char *end = nullptr;
    const double r = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        K2_FATAL("faults: bad number '%s' for '%s' at char %zu",
                 v.c_str(), key, at);
    return r;
}

/** parseDuration with the spec offset appended to any rejection. */
sim::Duration
parseDurationAt(const std::string &text, const char *key,
                std::size_t at)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || v < 0)
        K2_FATAL("faults: bad duration '%s' for '%s' at char %zu",
                 text.c_str(), key, at);
    const std::string suffix(end);
    if (suffix != "s" && !suffix.empty() && suffix != "ms" &&
        suffix != "us" && suffix != "ns")
        K2_FATAL("faults: bad duration suffix '%s' for '%s' at char "
                 "%zu (want s/ms/us/ns)",
                 suffix.c_str(), key, at);
    return parseDuration(text);
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    for (const auto &kn : kKindNames) {
        if (kn.kind == kind)
            return kn.name;
    }
    K2_PANIC("unknown fault kind %u", static_cast<unsigned>(kind));
}

sim::Duration
parseDuration(const std::string &text)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || v < 0)
        K2_FATAL("faults: bad duration '%s'", text.c_str());
    const std::string suffix(end);
    double scale; // to picoseconds
    if (suffix == "s" || suffix.empty())
        scale = 1e12;
    else if (suffix == "ms")
        scale = 1e9;
    else if (suffix == "us")
        scale = 1e6;
    else if (suffix == "ns")
        scale = 1e3;
    else
        K2_FATAL("faults: bad duration suffix '%s' (want s/ms/us/ns)",
                 suffix.c_str());
    return static_cast<sim::Duration>(v * scale + 0.5);
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    FaultSpec *cur = nullptr;

    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t sep = spec.find_first_of(",:", pos);
        if (sep == std::string::npos)
            sep = spec.size();
        const std::size_t tokenStart = pos;
        const std::string token = spec.substr(pos, sep - pos);
        pos = sep + 1;
        if (token.empty())
            continue;

        FaultKind kind;
        if (kindFromName(token, kind)) {
            FaultSpec fs;
            fs.kind = kind;
            // Stall/crash target the weak domain unless overridden.
            if (kind == FaultKind::DomainStall ||
                kind == FaultKind::DomainCrash)
                fs.domain = 1;
            plan.specs_.push_back(fs);
            cur = &plan.specs_.back();
            continue;
        }

        const std::size_t eq = token.find('=');
        if (eq == std::string::npos)
            K2_FATAL("faults: '%s' at char %zu is neither a fault "
                     "kind nor key=value",
                     token.c_str(), tokenStart);
        const std::string key = token.substr(0, eq);
        const std::string val = token.substr(eq + 1);
        const std::size_t valStart = tokenStart + eq + 1;
        if (key == "seed") {
            plan.seed = parseUint(val, "seed", valStart);
            continue;
        }
        if (!cur)
            K2_FATAL("faults: parameter '%s' at char %zu before any "
                     "fault kind",
                     token.c_str(), tokenStart);
        if (key == "p") {
            cur->p = parseDouble(val, "p", valStart);
            if (cur->p < 0.0 || cur->p > 1.0)
                K2_FATAL("faults: p=%s at char %zu out of [0,1]",
                         val.c_str(), valStart);
        } else if (key == "at") {
            cur->at = parseDurationAt(val, "at", valStart);
        } else if (key == "burst") {
            cur->burst = static_cast<std::uint32_t>(
                parseUint(val, "burst", valStart));
            if (cur->burst == 0)
                K2_FATAL("faults: burst at char %zu must be >= 1",
                         valStart);
        } else if (key == "len") {
            cur->len = parseDurationAt(val, "len", valStart);
        } else if (key == "dom") {
            cur->domain = static_cast<std::uint32_t>(
                parseUint(val, "dom", valStart));
        } else if (key == "line") {
            cur->line = static_cast<std::uint32_t>(
                parseUint(val, "line", valStart));
        } else {
            K2_FATAL("faults: unknown parameter '%s' at char %zu",
                     key.c_str(), tokenStart);
        }
    }

    for (const FaultSpec &fs : plan.specs_) {
        if (isScheduledKind(fs.kind)) {
            if (fs.p != 0.0)
                K2_FATAL("faults: %s is scheduled-only (use at=, not p=)",
                         faultKindName(fs.kind));
            if (fs.at == 0)
                K2_FATAL("faults: %s needs an onset time (at=...)",
                         faultKindName(fs.kind));
        }
        if (fs.kind == FaultKind::IrqSpurious && fs.line == kAnyLine)
            K2_FATAL("faults: irq.spurious needs a line (line=N)");
        if ((fs.kind == FaultKind::DomainStall ||
             fs.kind == FaultKind::DomainCrash) &&
            fs.domain == kAnyDomain)
            K2_FATAL("faults: %s needs a target domain (dom=N)",
                     faultKindName(fs.kind));
    }
    return plan;
}

std::string
FaultPlan::summary() const
{
    if (specs_.empty())
        return "none";
    std::string out;
    for (const FaultSpec &fs : specs_) {
        if (!out.empty())
            out += " ";
        out += faultKindName(fs.kind);
        if (fs.p > 0.0)
            out += sim::strPrintf("(p=%g)", fs.p);
        else
            out += sim::strPrintf("(at=%.3fms",
                                  static_cast<double>(fs.at) / 1e9) +
                   ")";
    }
    return out;
}

} // namespace fault
} // namespace k2
