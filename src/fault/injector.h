/**
 * @file
 * FaultInjector: the runtime side of the fault plane.
 *
 * The SoC components (MailboxNet, DmaEngine, InterruptController) hold
 * an optional pointer to one injector and consult it at each fault
 * opportunity. With no injector attached -- or an empty plan -- every
 * hook is a null-pointer check and the simulation is bit-identical to
 * a build without the fault plane.
 *
 * Decision model:
 *  - Per-opportunity kinds (mail drop/dup/flip, DMA error/IRQ-loss,
 *    lost IRQ) are decided synchronously at the hook from the
 *    injector's own PRNG stream. A hook draws at most once per
 *    matching clause, and not at all when no clause of its kind
 *    matches -- so adding, say, a DMA clause cannot perturb mailbox
 *    behaviour.
 *  - Scheduled conditions (domain crash/stall) are evaluated lazily
 *    from the clock: `domainDown()` compares now against the clause's
 *    onset. No standing timers are created, so the engine's
 *    quiescence-based episode harness is unaffected until software
 *    actually trips over the fault.
 *  - Spurious IRQs are the one exception: each clause schedules a
 *    single one-shot raise event at its onset time.
 *
 * Every injected fault increments a `fault.injected.*` counter and
 * emits an instant span on the "fault" track.
 */

#ifndef K2_FAULT_INJECTOR_H
#define K2_FAULT_INJECTOR_H

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "sim/engine.h"
#include "sim/random.h"
#include "sim/stats.h"

namespace k2 {

namespace obs {
class MetricsRegistry;
}

namespace fault {

class FaultInjector
{
  public:
    /** Outcome of the mailbox delivery hook. */
    enum class MailFate
    {
        Deliver,   //!< Normal delivery.
        Drop,      //!< Mail lost in transit (or endpoint crashed).
        Duplicate, //!< Deliver the mail twice.
        Corrupt,   //!< Payload flipped; link ECC detects and discards.
    };

    /** Raises a spurious interrupt on @p domain's controller. */
    using IrqRaiser = std::function<void(std::uint32_t domain,
                                         std::uint32_t line)>;

    FaultInjector(sim::Engine &eng, FaultPlan plan);

    const FaultPlan &plan() const { return plan_; }

    /**
     * Wire the spurious-IRQ raiser and schedule the (rare) one-shot
     * spurious raise events. Call once after SoC construction.
     */
    void arm(IrqRaiser raiser);

    /** @name Hook points (called by the SoC components). @{ */

    /**
     * Decide the fate of a mail about to be delivered. May mutate
     * @p word (bit flip) before returning Corrupt. Mails to or from a
     * crashed domain are dropped.
     */
    MailFate onMailDeliver(std::uint32_t from, std::uint32_t to,
                           std::uint32_t &word);

    /** True if the in-flight DMA transfer completes with an error. */
    bool onDmaTransfer();

    /** True if the DMA completion IRQ pulse should be suppressed. */
    bool onDmaCompletionIrq();

    /** True if a raised line on @p domain's controller is lost. */
    bool onIrqRaise(std::uint32_t domain, std::uint32_t line);

    /** @} */

    /** @name Scheduled-condition state (lazy, clock-derived). @{ */

    /** True while @p domain is crashed (onset passed, not revived). */
    bool domainDown(std::uint32_t domain) const;

    /** End of @p domain's current stall window, or 0 if not stalled. */
    sim::Time stallEnd(std::uint32_t domain) const;

    /** Onset time of the crash currently downing @p domain (for
     *  detection-latency attribution). */
    sim::Time crashTime(std::uint32_t domain) const;

    /** Revive @p domain: consume its tripped crash clauses. */
    void revive(std::uint32_t domain);

    /** @} */

    /** Faults injected so far for @p kind. */
    std::uint64_t injected(FaultKind kind) const
    {
        return injected_[static_cast<std::size_t>(kind)].value();
    }

    /** Mails/IRQs dropped because an endpoint domain was crashed. @{ */
    std::uint64_t crashMailDrops() const
    {
        return crashMailDrops_.value();
    }
    std::uint64_t crashIrqDrops() const
    {
        return crashIrqDrops_.value();
    }
    /** @} */

    /** Register `<prefix>.<kind>` counters (prefix "fault.injected"). */
    void registerMetrics(obs::MetricsRegistry &reg,
                         const std::string &prefix) const;

    /** Capture/restore the PRNG stream and per-clause consumption. */
    void snapState(snap::Io &io);

  private:
    struct ClauseState
    {
        FaultSpec spec;
        std::uint32_t burstLeft = 0; //!< Remaining forced fires.
        bool fired = false;          //!< One-shot clause consumed.
        bool revived = false;        //!< Crash clause cleared.
    };

    bool decide(FaultKind kind, std::uint32_t domain,
                std::uint32_t line);
    void note(FaultKind kind, std::uint32_t domain);

    sim::Engine &engine_;
    FaultPlan plan_;
    sim::Rng rng_;
    /** Clause indices grouped by kind: empty group = free no-op hook. */
    std::array<std::vector<std::size_t>, kNumFaultKinds> byKind_;
    std::vector<ClauseState> clauses_;
    IrqRaiser raiser_;
    sim::TrackId track_{};
    std::array<sim::Counter, kNumFaultKinds> injected_;
    sim::Counter crashMailDrops_;
    sim::Counter crashIrqDrops_;
};

} // namespace fault
} // namespace k2

#endif // K2_FAULT_INJECTOR_H
