/**
 * @file
 * Declarative fault schedules for the deterministic fault-injection
 * plane (k2::fault).
 *
 * A FaultPlan is a list of FaultSpec clauses plus a PRNG seed. Each
 * clause names a fault kind (a hook point in the simulated SoC), an
 * optional target filter, and either a per-opportunity probability or
 * a one-shot onset time. The plan is pure data: it can be built
 * programmatically, parsed from a `--faults=SPEC` string, and copied
 * into every sweep cell so parallel runs stay byte-identical.
 *
 * Determinism rules (DESIGN.md §9): all probabilistic fault decisions
 * draw from one dedicated sim::Rng stream seeded from the plan --
 * never from a workload's RNG -- and a hook only draws when at least
 * one clause of its kind matches the opportunity. An empty plan makes
 * every hook a constant-false check with no draws, no scheduled
 * events, and therefore a bit-identical simulation.
 */

#ifndef K2_FAULT_PLAN_H
#define K2_FAULT_PLAN_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace k2 {
namespace fault {

/** Fault kinds, one per hook point in the simulated SoC. */
enum class FaultKind : std::uint8_t
{
    MailDrop,         //!< Mailbox: mail vanishes in transit.
    MailDuplicate,    //!< Mailbox: mail delivered twice.
    MailBitFlip,      //!< Mailbox: payload corrupted in transit (the
                      //!< modelled link ECC detects and discards it).
    DmaTransferError, //!< DMA: transfer completes with error status.
    DmaIrqLoss,       //!< DMA: completion IRQ pulse lost (status still
                      //!< latched, pollable).
    IrqLost,          //!< Interrupt controller: raised line lost.
    IrqSpurious,      //!< Interrupt controller: line fires with no
                      //!< device activity behind it.
    DomainStall,      //!< Domain unresponsive for a bounded window.
    DomainCrash,      //!< Domain crashes: drops all mail/IRQ traffic
                      //!< until software revives it.
};

inline constexpr std::size_t kNumFaultKinds = 9;

/** Human-readable dotted name ("mailbox.drop"), also the parse name. */
const char *faultKindName(FaultKind kind);

/** Wildcard target filters. @{ */
inline constexpr std::uint32_t kAnyDomain = 0xFFFFFFFFu;
inline constexpr std::uint32_t kAnyLine = 0xFFFFFFFFu;
/** @} */

/**
 * One fault clause.
 *
 * Two trigger modes:
 *  - probabilistic (`p > 0`): each matching opportunity after @ref at
 *    fires with probability p (one PRNG draw per opportunity);
 *  - one-shot (`p == 0`): the first matching opportunity at or after
 *    @ref at fires, once. DomainStall / DomainCrash / IrqSpurious are
 *    one-shot only (they are scheduled conditions, not opportunities).
 *
 * Once triggered, the clause also fires on the next `burst - 1`
 * opportunities of its kind (deterministically, no draws).
 */
struct FaultSpec
{
    FaultKind kind = FaultKind::MailDrop;
    std::uint32_t domain = kAnyDomain; //!< Target domain filter.
    std::uint32_t line = kAnyLine;     //!< IRQ line filter.
    double p = 0.0;                    //!< Per-opportunity probability.
    sim::Time at = 0;                  //!< Onset time.
    std::uint32_t burst = 1;           //!< Opportunities per trigger.
    sim::Duration len = sim::msec(5);  //!< Stall window length.
};

class FaultPlan
{
  public:
    /** Seed of the dedicated fault-decision PRNG stream. */
    std::uint64_t seed = 0xFA017C0DEull;

    void add(FaultSpec spec) { specs_.push_back(spec); }

    bool empty() const { return specs_.empty(); }
    const std::vector<FaultSpec> &specs() const { return specs_; }

    /**
     * Parse a `--faults=` spec string, e.g.
     *
     *   mailbox.drop:p=1e-3,dma.err:at=2s
     *   domain.crash:at=40ms,mailbox.dup:p=1e-4:burst=2
     *
     * Clauses are separated by ',' or ':'; a token matching a fault
     * kind name opens a new clause, a `key=value` token parameterises
     * the current one. Keys: p, at, burst, len, dom, line, and the
     * plan-level seed. Durations take ns/us/ms/s suffixes (bare
     * numbers are seconds).
     *
     * @throws sim::FatalError on malformed input.
     */
    static FaultPlan parse(const std::string &spec);

    /** One-line rendering for banners ("mailbox.drop(p=0.001) ..."). */
    std::string summary() const;

  private:
    std::vector<FaultSpec> specs_;
};

/** Parse "2s" / "10ms" / "500us" / "250ns" (bare number = seconds). */
sim::Duration parseDuration(const std::string &text);

} // namespace fault
} // namespace k2

#endif // K2_FAULT_PLAN_H
