/**
 * @file
 * The failed design of §9.3: the page allocator as a *shadowed*
 * service instead of an independent one.
 *
 * "To contrast with K2's independent page allocators, we attempted but
 * found it infeasible to implement the page allocator as a shadowed
 * service. The contention between coherence domains is very high,
 * incurring four to five DSM page faults in every allocation, leading
 * to a 200x slowdown."
 *
 * This system keeps one logical allocator (the main kernel's) whose
 * hot metadata -- free-list heads, per-page structs, zone counters --
 * lives behind the DSM. Every allocation or free from either kernel
 * touches those state pages with write access, so alternating
 * allocations between domains ping-pong 4-5 pages per call.
 */

#ifndef K2_BASELINE_SHARED_ALLOC_SYSTEM_H
#define K2_BASELINE_SHARED_ALLOC_SYSTEM_H

#include <memory>

#include "os/k2_system.h"

namespace k2 {
namespace baseline {

class SharedAllocSystem : public os::K2System
{
  public:
    explicit SharedAllocSystem(os::K2Config cfg = {});

    sim::Task<kern::PageRange>
    allocPages(kern::Thread &t, unsigned order,
               kern::Migrate migrate = kern::Migrate::Movable) override;
    sim::Task<void> freePages(kern::Thread &t,
                              kern::PageRange range) override;

  private:
    /** Touch the allocator's hot state pages (4-5 per operation). */
    sim::Task<void> touchAllocatorState(kern::Thread &t, unsigned order,
                                        kern::Pfn pfn);

    /** Shared-state pages standing in for the allocator metadata:
     *  zone counters, per-order free-list heads, struct-page pages. */
    std::unique_ptr<os::SharedRegion> state_;
};

} // namespace baseline
} // namespace k2

#endif // K2_BASELINE_SHARED_ALLOC_SYSTEM_H
