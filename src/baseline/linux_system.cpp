#include "baseline/linux_system.h"

#include "sim/log.h"
#include "snap/io.h"

namespace k2 {
namespace baseline {

namespace {

/** Hardware coherence makes shared-state touches free. */
class LocalSharedRegion : public os::SharedRegion
{
  public:
    LocalSharedRegion(std::string name, std::uint64_t pages)
        : SharedRegion(std::move(name), pages)
    {}

    sim::Task<void>
    touch(kern::Kernel &, soc::Core &, std::uint64_t page_idx,
          os::Access) override
    {
        K2_ASSERT(page_idx < numPages());
        co_return;
    }
};

} // namespace

LinuxSystem::LinuxSystem(LinuxConfig cfg)
    : cfg_(std::move(cfg))
{
    soc_ = std::make_unique<soc::Soc>(engine_, cfg_.soc);
    layout_ = std::make_unique<kern::AddressSpaceLayout>(
        soc_->pageBytes(), soc_->numPages(),
        std::vector<std::pair<std::string, std::uint64_t>>{
            {"linux", cfg_.localPages}});

    kernel_ = std::make_unique<kern::Kernel>(*soc_, soc::kStrongDomain,
                                             "linux");
    kernel_->boot();
    // The single kernel owns the whole page pool from boot.
    kernel_->pageAllocator().addFreeRange(layout_->global().pages);

    auto &dom = soc_->domain(soc::kStrongDomain);
    for (std::size_t i = 0; i < dom.numCores(); ++i)
        dom.core(i).setOperatingPoint(cfg_.strongOperatingPoint);
}

LinuxSystem::~LinuxSystem() = default;

kern::Kernel &
LinuxSystem::kernelAt(soc::DomainId domain)
{
    if (domain != soc::kStrongDomain)
        K2_PANIC("the baseline has no kernel on domain %u", domain);
    return *kernel_;
}

std::vector<kern::Kernel *>
LinuxSystem::kernels()
{
    return {kernel_.get()};
}

std::unique_ptr<os::SharedRegion>
LinuxSystem::createSharedRegion(std::string name, std::uint64_t pages)
{
    return std::make_unique<LocalSharedRegion>(std::move(name), pages);
}

kern::Thread *
LinuxSystem::spawnNormal(kern::Process &proc, std::string name,
                         kern::Thread::Body body)
{
    return kernel_->spawnThread(&proc, std::move(name),
                                kern::ThreadKind::Normal,
                                std::move(body));
}

kern::Thread *
LinuxSystem::spawnNightWatch(kern::Process &proc, std::string name,
                             kern::Thread::Body body)
{
    // No weak domain: light tasks run as ordinary threads on the
    // strong domain, as in the paper's baseline measurements.
    return spawnNormal(proc, std::move(name), std::move(body));
}

sim::Task<kern::PageRange>
LinuxSystem::allocPages(kern::Thread &t, unsigned order,
                        kern::Migrate migrate)
{
    co_return co_await kernel_->allocPages(t, order, migrate);
}

sim::Task<void>
LinuxSystem::freePages(kern::Thread &t, kern::PageRange range)
{
    co_await kernel_->freePages(t, range);
}

void
LinuxSystem::snapState(snap::Io &io)
{
    engine_.snapState(io);
    soc_->snapState(io);
    kernel_->snapState(io);
    SystemImage::snapState(io);
}

} // namespace baseline
} // namespace k2
