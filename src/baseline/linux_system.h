/**
 * @file
 * The baseline: a shared-everything single kernel on the strong
 * domain, as in the paper's evaluation ("Linux can only use the
 * strong core"). The weak domain exists but is left idle (it
 * power-gates shortly after boot), mirroring stock Linux on OMAP4
 * where the Cortex-M3 is held by firmware.
 *
 * Light tasks (spawnNightWatch) run as ordinary threads on the strong
 * domain. Shared regions are backed by hardware cache coherence and
 * cost nothing to touch.
 */

#ifndef K2_BASELINE_LINUX_SYSTEM_H
#define K2_BASELINE_LINUX_SYSTEM_H

#include <memory>

#include "sim/engine.h"
#include "kern/layout.h"
#include "os/system.h"

namespace k2 {
namespace baseline {

struct LinuxConfig
{
    soc::SocConfig soc = soc::omap4Config();
    /** Strong-core DVFS point index at boot (0 = 350 MHz, the paper's
     *  most efficient point for the energy benchmarks). */
    std::size_t strongOperatingPoint = 0;
    /** Kernel local-region pages (the rest of RAM is the page pool). */
    std::uint64_t localPages = 12288;
};

class LinuxSystem : public os::SystemImage
{
  public:
    explicit LinuxSystem(LinuxConfig cfg = {});
    ~LinuxSystem() override;

    const char *modelName() const override { return "Linux"; }
    soc::Soc &soc() override { return *soc_; }
    kern::Kernel &kernelAt(soc::DomainId domain) override;
    std::vector<kern::Kernel *> kernels() override;
    kern::Kernel &mainKernel() override { return *kernel_; }
    kern::Kernel &nightWatchKernel() override { return *kernel_; }
    std::unique_ptr<os::SharedRegion>
    createSharedRegion(std::string name, std::uint64_t pages) override;
    kern::Thread *spawnNormal(kern::Process &proc, std::string name,
                              kern::Thread::Body body) override;
    kern::Thread *spawnNightWatch(kern::Process &proc, std::string name,
                                  kern::Thread::Body body) override;
    sim::Task<kern::PageRange>
    allocPages(kern::Thread &t, unsigned order,
               kern::Migrate migrate = kern::Migrate::Movable) override;
    sim::Task<void> freePages(kern::Thread &t,
                              kern::PageRange range) override;

    sim::Engine &ownedEngine() { return engine_; }
    const kern::AddressSpaceLayout &layout() const { return *layout_; }

    void snapState(snap::Io &io) override;

  private:
    LinuxConfig cfg_;
    sim::Engine engine_;
    std::unique_ptr<soc::Soc> soc_;
    std::unique_ptr<kern::AddressSpaceLayout> layout_;
    std::unique_ptr<kern::Kernel> kernel_;
};

} // namespace baseline
} // namespace k2

#endif // K2_BASELINE_LINUX_SYSTEM_H
