#include "baseline/shared_alloc_system.h"

namespace k2 {
namespace baseline {

namespace {

/** Page keys inside the allocator-state region. */
constexpr std::uint64_t kZonePage = 0;      // zone counters/watermarks
constexpr std::uint64_t kFreeListPage0 = 1; // per-order list heads
constexpr std::uint64_t kFreeListPages = 4;
constexpr std::uint64_t kStructPage0 = 5;   // struct-page array chunks
constexpr std::uint64_t kStructPages = 8;

} // namespace

SharedAllocSystem::SharedAllocSystem(os::K2Config cfg)
    : K2System(std::move(cfg))
{
    state_ = createSharedRegion("shared-page-allocator",
                                kStructPage0 + kStructPages);
}

sim::Task<void>
SharedAllocSystem::touchAllocatorState(kern::Thread &t, unsigned order,
                                       kern::Pfn pfn)
{
    // The hot path of __alloc_pages: zone counters, the free list of
    // the order (and of the order split from), the struct pages of the
    // block and of its buddy. All are written.
    co_await state_->touch(t.kernel(), t.core(), kZonePage,
                           os::Access::Write);
    co_await state_->touch(t.kernel(), t.core(),
                           kFreeListPage0 + order % kFreeListPages,
                           os::Access::Write);
    co_await state_->touch(t.kernel(), t.core(),
                           kFreeListPage0 + (order + 1) % kFreeListPages,
                           os::Access::Write);
    co_await state_->touch(t.kernel(), t.core(),
                           kStructPage0 + (pfn / 1024) % kStructPages,
                           os::Access::Write);
    co_await state_->touch(
        t.kernel(), t.core(),
        kStructPage0 + (pfn / 1024 + 1) % kStructPages,
        os::Access::Write);
}

sim::Task<kern::PageRange>
SharedAllocSystem::allocPages(kern::Thread &t, unsigned order,
                              kern::Migrate migrate)
{
    // One logical allocator (the main kernel's instance) serves both
    // kernels; its state is kept coherent by the DSM.
    auto res = mainKernel().pageAllocator().alloc(order, migrate);
    if (!res)
        co_return kern::PageRange{};
    co_await touchAllocatorState(t, order, res->range.first);
    const double factor = t.core().spec().kernelCostFactor;
    co_await t.exec(static_cast<std::uint64_t>(
        static_cast<double>(res->work) * factor + 0.5));
    co_return res->range;
}

sim::Task<void>
SharedAllocSystem::freePages(kern::Thread &t, kern::PageRange range)
{
    co_await touchAllocatorState(t, 0, range.first);
    const std::uint64_t work =
        mainKernel().pageAllocator().free(range.first);
    const double factor = t.core().spec().kernelCostFactor;
    co_await t.exec(static_cast<std::uint64_t>(
        static_cast<double>(work) * factor + 0.5));
}

} // namespace baseline
} // namespace k2
