#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "sim/log.h"

namespace k2 {
namespace obs {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

const char *
kindName(MetricValue::Kind k)
{
    switch (k) {
      case MetricValue::Kind::Counter:
        return "counter";
      case MetricValue::Kind::Gauge:
        return "gauge";
      case MetricValue::Kind::Accumulator:
        return "accumulator";
      case MetricValue::Kind::Histogram:
        return "histogram";
    }
    return "?";
}

/** Append a JSON number, rendering non-finite values as null. */
void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os << buf;
}

} // namespace

const MetricValue *
MetricsSnapshot::find(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? nullptr : &it->second;
}

bool
MetricsSnapshot::hasPrefix(const std::string &prefix) const
{
    auto it = values_.lower_bound(prefix);
    return it != values_.end() &&
           it->first.compare(0, prefix.size(), prefix) == 0;
}

void
MetricsSnapshot::writeJson(std::ostream &os) const
{
    os << "{\n";
    bool first = true;
    for (const auto &[name, v] : values_) {
        if (!first)
            os << ",\n";
        first = false;
        // Metric names are validated at registration ([a-z0-9._-]),
        // so they need no escaping.
        os << "  \"" << name << "\": {\"kind\": \"" << kindName(v.kind)
           << "\"";
        switch (v.kind) {
          case MetricValue::Kind::Counter:
            os << ", \"value\": " << v.count;
            break;
          case MetricValue::Kind::Gauge:
            os << ", \"value\": ";
            jsonNumber(os, v.value);
            break;
          case MetricValue::Kind::Histogram:
          case MetricValue::Kind::Accumulator:
            os << ", \"count\": " << v.count << ", \"sum\": ";
            jsonNumber(os, v.sum);
            os << ", \"mean\": ";
            jsonNumber(os, v.mean());
            os << ", \"min\": ";
            jsonNumber(os, v.min);
            os << ", \"max\": ";
            jsonNumber(os, v.max);
            if (v.kind == MetricValue::Kind::Histogram) {
                os << ", \"p50\": ";
                jsonNumber(os, v.p50);
                os << ", \"p99\": ";
                jsonNumber(os, v.p99);
            }
            break;
        }
        os << "}";
    }
    os << "\n}\n";
}

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

void
MetricsRegistry::insert(const std::string &name, Entry e)
{
    if (name.empty())
        K2_FATAL("metric name must not be empty");
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                        c == '-';
        if (!ok)
            K2_FATAL("invalid character '%c' in metric name '%s'", c,
                     name.c_str());
    }
    if (!entries_.emplace(name, std::move(e)).second)
        K2_FATAL("duplicate metric name '%s'", name.c_str());
}

void
MetricsRegistry::addCounter(const std::string &name, const sim::Counter &c)
{
    Entry e;
    e.kind = MetricValue::Kind::Counter;
    e.counter = &c;
    insert(name, std::move(e));
}

void
MetricsRegistry::addAccumulator(const std::string &name,
                                const sim::Accumulator &a)
{
    Entry e;
    e.kind = MetricValue::Kind::Accumulator;
    e.acc = &a;
    insert(name, std::move(e));
}

void
MetricsRegistry::addHistogram(const std::string &name,
                              const sim::Histogram &h)
{
    Entry e;
    e.kind = MetricValue::Kind::Histogram;
    e.hist = &h;
    insert(name, std::move(e));
}

void
MetricsRegistry::addGauge(const std::string &name, Gauge fn)
{
    K2_ASSERT(fn != nullptr);
    Entry e;
    e.kind = MetricValue::Kind::Gauge;
    e.gauge = std::move(fn);
    insert(name, std::move(e));
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    for (const auto &[name, e] : entries_) {
        MetricValue v;
        v.kind = e.kind;
        switch (e.kind) {
          case MetricValue::Kind::Counter:
            v.count = e.counter->value();
            break;
          case MetricValue::Kind::Gauge:
            v.value = e.gauge();
            break;
          case MetricValue::Kind::Accumulator:
            v.count = e.acc->count();
            v.sum = e.acc->sum();
            v.min = e.acc->min();
            v.max = e.acc->max();
            break;
          case MetricValue::Kind::Histogram:
            v.count = e.hist->acc().count();
            v.sum = e.hist->acc().sum();
            v.min = e.hist->acc().min();
            v.max = e.hist->acc().max();
            v.p50 = e.hist->percentile(0.50);
            v.p99 = e.hist->percentile(0.99);
            break;
        }
        snap.values_.emplace_hint(snap.values_.end(), name, v);
    }
    return snap;
}

MetricsSnapshot
MetricsRegistry::diff(const MetricsSnapshot &before,
                      const MetricsSnapshot &after)
{
    MetricsSnapshot out;
    for (const auto &[name, a] : after.values()) {
        const MetricValue *b = before.find(name);
        MetricValue v = a;
        if (b) {
            switch (a.kind) {
              case MetricValue::Kind::Counter:
                v.count = a.count - b->count;
                break;
              case MetricValue::Kind::Gauge:
                v.value = a.value - b->value;
                break;
              case MetricValue::Kind::Histogram:
              case MetricValue::Kind::Accumulator:
                v.count = a.count - b->count;
                v.sum = a.sum - b->sum;
                // Interval extrema/percentiles are unknowable from
                // endpoint snapshots.
                v.min = kNaN;
                v.max = kNaN;
                v.p50 = kNaN;
                v.p99 = kNaN;
                break;
            }
        }
        out.values_.emplace_hint(out.values_.end(), name, v);
    }
    return out;
}

} // namespace obs
} // namespace k2
