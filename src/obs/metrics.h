/**
 * @file
 * The metrics registry: one queryable namespace over every counter,
 * accumulator, and histogram in the system.
 *
 * The paper's evaluation is a set of energy/latency breakdowns sampled
 * off power rails and instrumented code paths; our reproduction keeps
 * the equivalent numbers in sim::Counter/Accumulator/Histogram members
 * scattered across subsystems. A MetricsRegistry gives them one
 * hierarchical namespace ("os.dsm.shadow.faults") that can be
 * snapshotted at any simulated instant, diffed across an episode, and
 * serialised as deterministic JSON.
 *
 * Registration stores a pointer to the live stat (or a gauge callback
 * for derived values such as rail energies); the registered objects
 * must outlive the registry's use. Names are unique; registering a
 * duplicate is a fatal configuration error. Snapshots are plain data
 * and remain valid after the system is gone.
 */

#ifndef K2_OBS_METRICS_H
#define K2_OBS_METRICS_H

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>

#include "sim/stats.h"

namespace k2 {
namespace obs {

/** One metric's sampled value inside a snapshot. */
struct MetricValue
{
    enum class Kind : std::uint8_t
    {
        Counter,     //!< Monotonic count.
        Gauge,       //!< Point-in-time scalar.
        Accumulator, //!< count/sum/min/max of samples.
        Histogram,   //!< Accumulator plus log2 percentiles.
    };

    Kind kind = Kind::Counter;
    std::uint64_t count = 0; //!< Counter value or sample count.
    double value = 0.0;      //!< Gauge value.
    double sum = 0.0;
    double min = 0.0; //!< NaN when unavailable (no samples / a diff).
    double max = 0.0; //!< NaN when unavailable.
    double p50 = 0.0; //!< Histogram only; NaN when unavailable.
    double p99 = 0.0; //!< Histogram only; NaN when unavailable.

    double mean() const { return count ? sum / count : 0.0; }
};

/**
 * An immutable capture of every registered metric at one instant.
 * Ordered by name, so iteration and serialisation are deterministic.
 */
class MetricsSnapshot
{
  public:
    using Map = std::map<std::string, MetricValue>;

    const Map &values() const { return values_; }
    std::size_t size() const { return values_.size(); }

    /** The value for @p name, or nullptr if not present. */
    const MetricValue *find(const std::string &name) const;

    /** True if any metric name starts with @p prefix. */
    bool hasPrefix(const std::string &prefix) const;

    /**
     * Serialise as a JSON object keyed by metric name. NaN fields
     * (e.g. min/max of an empty accumulator) render as null, keeping
     * the output standard JSON. Deterministic: same snapshot bits,
     * same bytes.
     */
    void writeJson(std::ostream &os) const;
    std::string toJson() const;

  private:
    friend class MetricsRegistry;
    Map values_;
};

class MetricsRegistry
{
  public:
    using Gauge = std::function<double()>;

    /** @name Registration (cold path, at system assembly). @{ */
    void addCounter(const std::string &name, const sim::Counter &c);
    void addAccumulator(const std::string &name,
                        const sim::Accumulator &a);
    void addHistogram(const std::string &name, const sim::Histogram &h);
    void addGauge(const std::string &name, Gauge fn);
    /** @} */

    std::size_t size() const { return entries_.size(); }

    /** Capture every registered metric at this instant. */
    MetricsSnapshot snapshot() const;

    /**
     * Per-episode delta: @p after minus @p before, per metric.
     * Counters, sums, and gauges subtract; min/max/percentiles of an
     * interval are not derivable from two endpoint snapshots and come
     * back NaN (rendered "-"/null). Metrics present only in @p after
     * (registered mid-episode) are passed through unchanged.
     */
    static MetricsSnapshot diff(const MetricsSnapshot &before,
                                const MetricsSnapshot &after);

  private:
    struct Entry
    {
        MetricValue::Kind kind;
        const sim::Counter *counter = nullptr;
        const sim::Accumulator *acc = nullptr;
        const sim::Histogram *hist = nullptr;
        Gauge gauge;
    };

    void insert(const std::string &name, Entry e);

    std::map<std::string, Entry> entries_;
};

} // namespace obs
} // namespace k2

#endif // K2_OBS_METRICS_H
