/**
 * @file
 * Deterministic JSON serialisation for quantile sketches.
 *
 * The fleet harness reduces millions of device episodes into a
 * handful of named QuantileSketch objects; this renders them as one
 * JSON artifact (count/sum/mean/min/max, the p50/p90/p99/p99.9 tail,
 * and the sparse nonzero log2 buckets) so fleet reports can be diffed
 * byte-for-byte across `--jobs=N` and sweep modes, exactly like the
 * metrics snapshots. NaN fields (an empty sketch's min/max and
 * percentiles) render as null, keeping the output standard JSON.
 */

#ifndef K2_OBS_SKETCH_JSON_H
#define K2_OBS_SKETCH_JSON_H

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/sketch.h"

namespace k2 {
namespace obs {

/** Named sketches to serialise together, rendered in the given
 *  order. Names must be stable and already JSON-safe ([a-z0-9._-]),
 *  like metric names. */
using NamedSketches =
    std::vector<std::pair<std::string, const sim::QuantileSketch *>>;

/** Serialise @p sketches as one JSON object keyed by name.
 *  Deterministic: same sketch bits, same bytes. */
void writeSketchJson(std::ostream &os, const NamedSketches &sketches);
std::string sketchJson(const NamedSketches &sketches);

} // namespace obs
} // namespace k2

#endif // K2_OBS_SKETCH_JSON_H
