/**
 * @file
 * Chrome trace_event (catapult) exporter for the structured span
 * stream recorded by sim::Tracer.
 *
 * The output is a standard JSON object with a "traceEvents" array,
 * loadable in chrome://tracing or https://ui.perfetto.dev. Every
 * registered track becomes a named thread of one "k2-sim" process:
 * core power states, scheduler slices, mailbox traffic, DSM fault
 * phases, and per-rail power counters each get their own row on the
 * timeline.
 *
 * Serialisation happens entirely off the simulation hot path: the
 * tracer records POD events into a pre-reserved buffer during the run,
 * and this writer walks that buffer afterwards. Timestamps are emitted
 * in microseconds (catapult's unit) with picosecond precision, and the
 * output is byte-deterministic for identical runs.
 */

#ifndef K2_OBS_TRACE_EXPORT_H
#define K2_OBS_TRACE_EXPORT_H

#include <ostream>
#include <string>

#include "sim/trace.h"

namespace k2 {
namespace obs {

/** Write @p tracer's span stream as catapult JSON to @p os. */
void writeChromeTrace(const sim::Tracer &tracer, std::ostream &os);

/** As writeChromeTrace, into a string. */
std::string chromeTraceJson(const sim::Tracer &tracer);

} // namespace obs
} // namespace k2

#endif // K2_OBS_TRACE_EXPORT_H
