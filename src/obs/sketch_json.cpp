#include "obs/sketch_json.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace k2 {
namespace obs {

namespace {

/** Append a JSON number, rendering non-finite values as null (same
 *  formatting contract as the metrics snapshot serialiser). */
void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os << buf;
}

} // namespace

void
writeSketchJson(std::ostream &os, const NamedSketches &sketches)
{
    os << "{\n";
    bool first = true;
    for (const auto &[name, sk] : sketches) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  \"" << name << "\": {\"count\": " << sk->count()
           << ", \"sum\": ";
        jsonNumber(os, sk->sum());
        os << ", \"mean\": ";
        jsonNumber(os, sk->mean());
        os << ", \"min\": ";
        jsonNumber(os, sk->min());
        os << ", \"max\": ";
        jsonNumber(os, sk->max());
        static constexpr std::pair<const char *, double> kTails[] = {
            {"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99},
            {"p999", 0.999}};
        for (const auto &[key, p] : kTails) {
            os << ", \"" << key << "\": ";
            jsonNumber(os, sk->count() ? sk->percentile(p)
                                       : std::nan(""));
        }
        // Sparse buckets: only nonzero entries, lowest index first.
        os << ", \"buckets\": {";
        bool firstBucket = true;
        for (std::size_t i = 0; i < sim::QuantileSketch::kBuckets;
             ++i) {
            if (sk->bucket(i) == 0)
                continue;
            if (!firstBucket)
                os << ", ";
            firstBucket = false;
            os << "\"" << i << "\": " << sk->bucket(i);
        }
        os << "}}";
    }
    os << "\n}\n";
}

std::string
sketchJson(const NamedSketches &sketches)
{
    std::ostringstream os;
    writeSketchJson(os, sketches);
    return os.str();
}

} // namespace obs
} // namespace k2
