#include "obs/trace_export.h"

#include <cstdio>
#include <sstream>

namespace k2 {
namespace obs {

namespace {

/** Escape a string for inclusion in a JSON string literal. */
void
jsonEscape(std::ostream &os, const char *s)
{
    for (; *s; ++s) {
        const unsigned char c = static_cast<unsigned char>(*s);
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          case '\r':
            os << "\\r";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << static_cast<char>(c);
            }
        }
    }
}

/** Simulated picoseconds as catapult microseconds, exactly. */
void
emitUs(std::ostream &os, sim::Time ps)
{
    // Integer-split so the text is exact and deterministic (no
    // double rounding): 1 us = 1e6 ps.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(ps / 1000000ull),
                  static_cast<unsigned long long>(ps % 1000000ull));
    os << buf;
}

void
emitValue(std::ostream &os, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os << buf;
}

} // namespace

void
writeChromeTrace(const sim::Tracer &tracer, std::ostream &os)
{
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";

    // Process + per-track thread metadata. tid 0 is reserved for the
    // process-name record; track n maps to tid n+1.
    os << "{\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": "
          "\"process_name\", \"args\": {\"name\": \"k2-sim\"}}";
    const auto &tracks = tracer.trackNames();
    for (std::size_t i = 0; i < tracks.size(); ++i) {
        os << ",\n{\"ph\": \"M\", \"pid\": 0, \"tid\": " << (i + 1)
           << ", \"name\": \"thread_name\", \"args\": {\"name\": \"";
        jsonEscape(os, tracks[i].c_str());
        os << "\"}}";
        os << ",\n{\"ph\": \"M\", \"pid\": 0, \"tid\": " << (i + 1)
           << ", \"name\": \"thread_sort_index\", \"args\": "
              "{\"sort_index\": "
           << (i + 1) << "}}";
    }

    for (const auto &e : tracer.spanEvents()) {
        os << ",\n{\"pid\": 0, \"tid\": " << (e.track + 1)
           << ", \"ts\": ";
        emitUs(os, e.ts);
        const char *name = e.name ? e.name : "";
        switch (e.phase) {
          case sim::SpanPhase::Begin:
            os << ", \"ph\": \"B\", \"name\": \"";
            jsonEscape(os, name);
            os << "\"";
            break;
          case sim::SpanPhase::End:
            os << ", \"ph\": \"E\"";
            break;
          case sim::SpanPhase::Complete:
            os << ", \"ph\": \"X\", \"dur\": ";
            emitUs(os, e.dur);
            os << ", \"name\": \"";
            jsonEscape(os, name);
            os << "\"";
            break;
          case sim::SpanPhase::Instant:
            os << ", \"ph\": \"i\", \"s\": \"t\", \"name\": \"";
            jsonEscape(os, name);
            os << "\"";
            break;
          case sim::SpanPhase::Counter:
            os << ", \"ph\": \"C\", \"name\": \"";
            jsonEscape(os, name);
            os << "\"";
            break;
        }
        const bool hasDetail = e.detail != sim::Tracer::kNoDetail;
        const bool hasValue =
            e.phase == sim::SpanPhase::Counter ||
            (e.phase == sim::SpanPhase::Instant && e.value != 0.0);
        if (hasDetail || hasValue) {
            os << ", \"args\": {";
            if (hasValue) {
                os << "\"value\": ";
                emitValue(os, e.value);
            }
            if (hasDetail) {
                if (hasValue)
                    os << ", ";
                os << "\"detail\": \"";
                jsonEscape(os, tracer.spanDetail(e.detail).c_str());
                os << "\"";
            }
            os << "}";
        }
        os << "}";
    }
    os << "\n]}\n";
}

std::string
chromeTraceJson(const sim::Tracer &tracer)
{
    std::ostringstream os;
    writeChromeTrace(tracer, os);
    return os.str();
}

} // namespace obs
} // namespace k2
