#!/usr/bin/env bash
# Run the micro_sim google-benchmark suite and record the results as
# BENCH_sim.json at the repo root. That file is the tracked host-side
# performance baseline: future PRs compare their numbers against it
# (scripts/compare_bench.py) and re-record it when they move the
# needle.
#
# Usage: scripts/run_bench.sh [build-dir]
#
# The baseline must come from an optimized build: the default build
# dir is build-bench/, configured as Release. Passing an existing
# build dir whose CMAKE_BUILD_TYPE is not Release is refused.
#
# Note: the JSON context's "library_build_type" describes the system
# libbenchmark package (often "debug" on Debian) -- it says nothing
# about k2's own optimization level. The authoritative field is
# "k2_build_type", stamped by micro_sim from CMAKE_BUILD_TYPE.

set -euo pipefail

BUILD_DIR="${1:-build-bench}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

if [ -f "$BUILD_DIR/CMakeCache.txt" ]; then
    BT="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
        "$BUILD_DIR/CMakeCache.txt")"
    if [ "$BT" != "Release" ]; then
        echo "error: $BUILD_DIR is configured as '${BT:-unset}', not" \
             "Release." >&2
        echo "Benchmark baselines must come from an optimized build;" \
             "rerun without arguments to use build-bench/ (Release)." >&2
        exit 1
    fi
fi

cmake -B "$BUILD_DIR" -S . -G Ninja \
    -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target micro_sim

"$BUILD_DIR/bench/micro_sim" \
    --benchmark_format=json \
    --benchmark_out="$ROOT/BENCH_sim.json" \
    --benchmark_out_format=json \
    --benchmark_min_time=0.5

echo
echo "wrote $ROOT/BENCH_sim.json"
