#!/usr/bin/env bash
# Run the micro_sim google-benchmark suite and record the results as
# BENCH_sim.json at the repo root. That file is the tracked host-side
# performance baseline: future PRs compare their numbers against it
# (scripts/compare_bench.py) and re-record it when they move the
# needle.
#
# Usage: scripts/run_bench.sh [build-dir] [-- extra micro_sim args]
#
# The baseline must come from an optimized build end to end:
#  - k2 itself: the default build dir is build-bench/ (the `bench`
#    preset), configured as Release. Passing an existing build dir
#    whose CMAKE_BUILD_TYPE is not Release is refused.
#  - the benchmark *harness*: the recorded JSON must carry
#    "library_build_type": "release". The bundled k2bench harness
#    (third_party/k2bench, the default) always is; the system Debian
#    libbenchmark is a debug build, and a baseline measured through it
#    is refused after the run (K2_ALLOW_DEBUG_BENCH=1 overrides, for
#    harness A/B experiments only -- never for a committed baseline).

set -euo pipefail

BUILD_DIR="${1:-build-bench}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

EXTRA_ARGS=()
if [ $# -ge 2 ] && [ "$2" = "--" ]; then
    EXTRA_ARGS=("${@:3}")
fi

if [ -f "$BUILD_DIR/CMakeCache.txt" ]; then
    BT="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
        "$BUILD_DIR/CMakeCache.txt")"
    if [ "$BT" != "Release" ]; then
        echo "error: $BUILD_DIR is configured as '${BT:-unset}', not" \
             "Release." >&2
        echo "Benchmark baselines must come from an optimized build;" \
             "rerun without arguments to use build-bench/ (Release)." >&2
        exit 1
    fi
fi

cmake -B "$BUILD_DIR" -S . -G Ninja \
    -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target micro_sim

"$BUILD_DIR/bench/micro_sim" \
    --benchmark_format=json \
    --benchmark_out="$ROOT/BENCH_sim.json" \
    --benchmark_out_format=json \
    --benchmark_min_time=0.5 \
    "${EXTRA_ARGS[@]}"

# Refuse a baseline measured through a debug benchmark harness: its
# per-iteration overhead is not comparable with release-harness runs.
LBT="$(python3 - "$ROOT/BENCH_sim.json" <<'EOF'
import json, sys
print(json.load(open(sys.argv[1])).get("context", {})
      .get("library_build_type", "unknown"))
EOF
)"
if [ "$LBT" != "release" ]; then
    echo >&2
    echo "error: BENCH_sim.json was measured through a" \
         "'$LBT'-build benchmark harness." >&2
    echo "Use the bundled k2bench harness (the default;" \
         "-DK2_SYSTEM_BENCHMARK=OFF) so library_build_type is" \
         "'release'." >&2
    if [ "${K2_ALLOW_DEBUG_BENCH:-0}" != "1" ]; then
        echo "Set K2_ALLOW_DEBUG_BENCH=1 to keep the file anyway" \
             "(harness A/B experiments only)." >&2
        exit 1
    fi
    echo "K2_ALLOW_DEBUG_BENCH=1 set: keeping the file anyway." >&2
fi

echo
echo "wrote $ROOT/BENCH_sim.json"
