#!/usr/bin/env bash
# Run the micro_sim google-benchmark suite and record the results as
# BENCH_sim.json at the repo root. That file is the tracked host-side
# performance baseline: future PRs compare their numbers against it
# and re-record it when they move the needle.
#
# Usage: scripts/run_bench.sh [build-dir]

set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD_DIR" -S . -G Ninja >/dev/null
cmake --build "$BUILD_DIR" --target micro_sim

"$BUILD_DIR/bench/micro_sim" \
    --benchmark_format=json \
    --benchmark_out="$ROOT/BENCH_sim.json" \
    --benchmark_out_format=json \
    --benchmark_min_time=0.5

echo
echo "wrote $ROOT/BENCH_sim.json"
