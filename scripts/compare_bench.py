#!/usr/bin/env python3
"""Compare two google-benchmark JSON files (tier-2 perf gate).

Usage: scripts/compare_bench.py BASELINE.json CANDIDATE.json
       [--threshold PCT] [--filter REGEX]

Exits non-zero when any benchmark present in both files regresses its
real_time by more than the threshold (default 15%), or when any
benchmark's allocs/op counter increases at all -- the event core's
zero-allocation guarantees are exact, so a single new allocation per
op is a regression, not noise.

--filter restricts the comparison to benchmark names matching the
regex (same spirit as google-benchmark's --benchmark_filter), for
gating one subsystem without re-validating the rest of the suite.
Improvements beyond the threshold are summarized separately at the
end, so a perf PR's claimed speedup is readable straight off the
gate's output.

Typical use:

    scripts/run_bench.sh               # baseline -> BENCH_sim.json
    ... make changes ...
    build-bench/bench/micro_sim --benchmark_format=json \
        --benchmark_out=/tmp/cand.json --benchmark_out_format=json
    scripts/compare_bench.py BENCH_sim.json /tmp/cand.json
"""

import argparse
import json
import re
import sys

# allocs/op below this is a one-time setup allocation amortized over
# the iteration count (e.g. 1.2e-07 with a different denominator per
# run), not a per-op allocation; treat it as zero.
ALLOC_EPSILON = 1e-3


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    benches = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        benches[b["name"]] = b
    if not benches:
        sys.exit(f"error: {path} contains no benchmarks")
    return data.get("context", {}), benches


def main():
    ap = argparse.ArgumentParser(
        description="Diff two google-benchmark JSON files.")
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=15.0,
                    help="max allowed real_time regression in percent "
                         "(default: %(default)s)")
    ap.add_argument("--filter", metavar="REGEX", default=None,
                    help="compare only benchmarks whose name matches "
                         "this regex (re.search semantics)")
    args = ap.parse_args()

    base_ctx, base = load(args.baseline)
    cand_ctx, cand = load(args.candidate)

    if args.filter is not None:
        try:
            pat = re.compile(args.filter)
        except re.error as e:
            sys.exit(f"error: bad --filter regex: {e}")
        base = {n: b for n, b in base.items() if pat.search(n)}
        cand = {n: b for n, b in cand.items() if pat.search(n)}
        if not base or not cand:
            sys.exit(f"error: --filter {args.filter!r} matches no "
                     "benchmarks in "
                     + ("both files" if not base and not cand
                        else "the baseline" if not base
                        else "the candidate"))

    for label, ctx in (("baseline", base_ctx), ("candidate", cand_ctx)):
        bt = ctx.get("k2_build_type")
        if bt is not None and bt != "Release":
            print(f"warning: {label} was built as {bt}, not Release; "
                  "its numbers are not comparable", file=sys.stderr)

    shared = sorted(set(base) & set(cand))
    if not shared:
        sys.exit("error: the two files share no benchmark names")
    for name in sorted(set(base) - set(cand)):
        print(f"warning: {name} missing from candidate", file=sys.stderr)

    failures = []
    improvements = []
    width = max(len(n) for n in shared)
    print(f"{'benchmark':<{width}}  {'base':>12}  {'cand':>12}  "
          f"{'delta':>8}  allocs/op")
    for name in shared:
        b, c = base[name], cand[name]
        bt, ct = b["real_time"], c["real_time"]
        unit = b.get("time_unit", "ns")
        delta = (ct - bt) / bt * 100.0 if bt else 0.0
        def allocs(entry):
            v = entry.get("allocs/op")
            if v is None:
                return None
            return 0.0 if v < ALLOC_EPSILON else v

        ba = allocs(b)
        ca = allocs(c)
        alloc_txt = "-"
        if ba is not None or ca is not None:
            alloc_txt = f"{ba if ba is not None else 0:g} -> " \
                        f"{ca if ca is not None else 0:g}"
        flag = ""
        if delta > args.threshold:
            flag = "  REGRESSION"
            failures.append(
                f"{name}: real_time {bt:.1f} -> {ct:.1f} {unit} "
                f"(+{delta:.1f}% > {args.threshold:g}%)")
        elif delta < -args.threshold and ct > 0:
            flag = "  IMPROVED"
            improvements.append(
                f"{name}: real_time {bt:.1f} -> {ct:.1f} {unit} "
                f"({delta:.1f}%, {bt / ct:.2f}x)")
        if ca is not None and ca > (ba or 0.0):
            flag += "  ALLOC-REGRESSION"
            failures.append(
                f"{name}: allocs/op {ba if ba is not None else 0:g} "
                f"-> {ca:g} (any increase fails)")
        print(f"{name:<{width}}  {bt:>10.1f}{unit:>2}  "
              f"{ct:>10.1f}{unit:>2}  {delta:>+7.1f}%  "
              f"{alloc_txt}{flag}")

    if improvements:
        print(f"\nimprovements beyond {args.threshold:g}%:")
        for i in improvements:
            print(f"  {i}")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(shared)} benchmarks within {args.threshold:g}% "
          "and no allocs/op increases")
    return 0


if __name__ == "__main__":
    sys.exit(main())
