#!/usr/bin/env bash
# Profile a micro_sim hot path and print where the cycles go.
#
# Usage: scripts/profile.sh [--filter REGEX] [--min-time SEC]
#
# Prefers `perf` (sampled call graphs, no rebuild needed) when the
# host has it; falls back to gprof instrumentation otherwise --
# containers routinely lack perf or the perf_event_paranoid access
# for it, and a -pg build answers the same "which function is hot"
# question with no kernel support at all.
#
#  - perf path: profiles the Release bench build (build-bench/).
#    Artifacts: build-prof/perf.data (+ a perf report summary).
#  - gprof path: configures build-prof/ as Release + -pg, runs the
#    filtered benchmarks there, and prints the flat profile head.
#    Artifacts: build-prof/profile.txt, build-prof/gmon.out.
#
# Either way the filtered benchmarks run with a generous min-time so
# the samples come from steady state, not setup.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

FILTER="BM_FleetDeviceHour"
MIN_TIME=2
while [ $# -gt 0 ]; do
    case "$1" in
        --filter) FILTER="$2"; shift 2 ;;
        --filter=*) FILTER="${1#*=}"; shift ;;
        --min-time) MIN_TIME="$2"; shift 2 ;;
        --min-time=*) MIN_TIME="${1#*=}"; shift ;;
        *) echo "usage: scripts/profile.sh [--filter REGEX]" \
               "[--min-time SEC]" >&2; exit 2 ;;
    esac
done

BENCH_ARGS=(--benchmark_filter="$FILTER"
            --benchmark_min_time="${MIN_TIME}s")
mkdir -p build-prof

if command -v perf >/dev/null 2>&1 &&
   perf stat -e task-clock true >/dev/null 2>&1; then
    cmake -B build-bench -S . -G Ninja \
        -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build build-bench --target micro_sim
    echo "== perf stat ($FILTER) =="
    perf stat -- build-bench/bench/micro_sim "${BENCH_ARGS[@]}"
    perf record -g -o build-prof/perf.data -- \
        build-bench/bench/micro_sim "${BENCH_ARGS[@]}" >/dev/null
    echo
    echo "== hottest symbols =="
    perf report -i build-prof/perf.data --stdio \
        --percent-limit 1 2>/dev/null | head -40
    echo
    echo "full call graph: perf report -i build-prof/perf.data"
    exit 0
fi

echo "perf unavailable; using gprof (-pg instrumented Release build)"
cmake -B build-prof -S . -G Ninja \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS="-pg -g -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-pg" >/dev/null
cmake --build build-prof --target micro_sim

# gmon.out lands in the working directory of the profiled process.
(cd build-prof && bench/micro_sim "${BENCH_ARGS[@]}")
gprof -b build-prof/bench/micro_sim build-prof/gmon.out \
    > build-prof/profile.txt
echo
echo "== flat profile (top) =="
sed -n '1,25p' build-prof/profile.txt
echo
echo "full profile: build-prof/profile.txt"
