#!/usr/bin/env bash
# Configure, build, and run the full test suite.
#
# Usage: scripts/check.sh [--asan]
#
# With --asan, builds into build-asan/ with AddressSanitizer + UBSan
# (-DK2_SANITIZE=ON); this continuously checks the engine's manual
# event-pool allocator for lifetime bugs.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

BUILD_DIR=build
EXTRA=()
if [ "${1:-}" = "--asan" ]; then
    BUILD_DIR=build-asan
    EXTRA=(-DK2_SANITIZE=ON)
    # Eternal detached coroutines (scheduler core loops) are reclaimed
    # only at process exit; see the suppression file.
    export LSAN_OPTIONS="suppressions=$ROOT/scripts/lsan.supp${LSAN_OPTIONS:+:$LSAN_OPTIONS}"
fi

cmake -B "$BUILD_DIR" -S . -G Ninja "${EXTRA[@]}" >/dev/null
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# Observability smoke: one short testbed run must emit a metrics
# snapshot and a Chrome trace that both parse as JSON.
OBS_DIR="$BUILD_DIR/obs-smoke"
mkdir -p "$OBS_DIR"
"$BUILD_DIR"/src/workloads/testbed --episodes=3 \
    --metrics="$OBS_DIR/metrics.json" --trace="$OBS_DIR/trace.json" \
    >/dev/null
python3 -m json.tool "$OBS_DIR/metrics.json" >/dev/null
python3 -m json.tool "$OBS_DIR/trace.json" >/dev/null
echo "observability smoke: metrics + trace JSON OK"
