#!/usr/bin/env bash
# Configure, build, and run the full test suite.
#
# Usage: scripts/check.sh [--asan | --tsan | --bench]
#
# With --asan, builds into build-asan/ with AddressSanitizer + UBSan
# (-DK2_SANITIZE=ON); this continuously checks the engine's manual
# event-pool allocator for lifetime bugs.
#
# With --tsan, builds into build-tsan/ with ThreadSanitizer
# (-DK2_SANITIZE=thread) and runs the tests that exercise host-thread
# parallelism: the sweep harness and the thread-confined log
# configuration. TSan and the simulator's single-threaded tier-1 suite
# don't mix usefully, so only the parallel tests run in this mode.
#
# With --bench, runs the tier-2 perf gate end to end: rebuilds the
# Release bench preset, re-measures the micro_sim suite, and fails if
# any benchmark regresses against the recorded BENCH_sim.json baseline
# (scripts/compare_bench.py, default threshold).

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

BUILD_DIR=build
EXTRA=()
MODE="${1:-}"
if [ "$MODE" = "--asan" ]; then
    BUILD_DIR=build-asan
    EXTRA=(-DK2_SANITIZE=ON)
    # Eternal detached coroutines (scheduler core loops) are reclaimed
    # only at process exit; see the suppression file.
    export LSAN_OPTIONS="suppressions=$ROOT/scripts/lsan.supp${LSAN_OPTIONS:+:$LSAN_OPTIONS}"
elif [ "$MODE" = "--tsan" ]; then
    BUILD_DIR=build-tsan
    EXTRA=(-DK2_SANITIZE=thread)
elif [ "$MODE" = "--bench" ]; then
    cmake -B build-bench -S . -G Ninja \
        -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build build-bench --target micro_sim
    build-bench/bench/micro_sim \
        --benchmark_format=json \
        --benchmark_out=build-bench/bench_gate.json \
        --benchmark_out_format=json \
        --benchmark_min_time=0.5
    scripts/compare_bench.py BENCH_sim.json build-bench/bench_gate.json
    echo "bench gate: no regressions vs BENCH_sim.json"
    exit 0
fi

# Prefer Ninja for fresh trees, but reuse whatever generator an
# existing build dir was configured with (the tier-1 instructions
# create build/ with the default generator).
GEN=()
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
    GEN=(-G Ninja)
fi
cmake -B "$BUILD_DIR" -S . "${GEN[@]}" "${EXTRA[@]}" >/dev/null
cmake --build "$BUILD_DIR" -j

if [ "$MODE" = "--tsan" ]; then
    # Race-check the parallel sweep paths, then exercise a ported
    # sweep binary and the testbed at an adversarial thread count.
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" \
        -R 'SweepRunner|ScopedLogConfig|ParseJobsFlag'
    "$BUILD_DIR"/bench/fig6a_dma_energy --jobs=13 >/dev/null
    "$BUILD_DIR"/src/workloads/testbed --episodes=3 --runs=4 --jobs=13 \
        >/dev/null
    # The fault plane's injector/recovery state is per-cell; shard a
    # faulty sweep across threads to race-check it too.
    "$BUILD_DIR"/src/workloads/testbed --episodes=3 --runs=4 --jobs=13 \
        --faults="mailbox.drop:p=0.2,mailbox.dup:p=0.1" >/dev/null
    # Replicated shadows add a vote/election plane on top of the fault
    # plane; shard a leader-crash sweep to race-check it.
    "$BUILD_DIR"/src/workloads/testbed --episodes=3 --runs=4 --jobs=13 \
        --replicas=3 --faults="domain.crash:at=5ms:dom=1:len=2ms" \
        >/dev/null
    # The directory coherence protocols add invalidation fan-out and
    # third-party forwards to the sweep cells; race-check one under an
    # adversarial thread count.
    "$BUILD_DIR"/bench/fig6b_ext2_energy --dsm=mesi --jobs=13 >/dev/null
    # Warm (boot-once snapshot/fork) vs cold sweeps must emit
    # byte-identical artifacts even at an adversarial thread count.
    "$BUILD_DIR"/bench/fig6a_dma_energy --sweep=warm --jobs=13 \
        > "$BUILD_DIR/snap-warm.txt"
    "$BUILD_DIR"/bench/fig6a_dma_energy --sweep=cold --jobs=13 \
        > "$BUILD_DIR/snap-cold.txt"
    diff "$BUILD_DIR/snap-warm.txt" "$BUILD_DIR/snap-cold.txt"
    # The fleet's streaming-reducer lanes are the newest parallel
    # surface: race-check a sharded population and its lane merges,
    # then at fleet scale -- 100k devices shard into enough cells to
    # exercise every lane joint (calibration memoization, chunked SoA
    # synthesis, sketch folds) under the race detector. Leave stderr
    # attached: it carries the throughput line but also any TSan
    # report, which a 2>/dev/null would silently discard (that hid a
    # real signgam race in lgamma once).
    "$BUILD_DIR"/src/workloads/fleet --devices=600 --hours=4 --jobs=13 \
        > "$BUILD_DIR/fleet-tsan.txt"
    "$BUILD_DIR"/src/workloads/fleet --devices=600 --hours=4 --jobs=1 \
        | diff - "$BUILD_DIR/fleet-tsan.txt"
    "$BUILD_DIR"/src/workloads/fleet --devices=100000 --hours=1 \
        --jobs=13 > "$BUILD_DIR/fleet-tsan-big.txt"
    "$BUILD_DIR"/src/workloads/fleet --devices=100000 --hours=1 \
        --jobs=1 | diff - "$BUILD_DIR/fleet-tsan-big.txt"
    echo "tsan: parallel sweep tests + warm/cold identity OK"
    exit 0
fi

ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# Observability smoke: one short testbed run must emit a metrics
# snapshot and a Chrome trace that both parse as JSON.
OBS_DIR="$BUILD_DIR/obs-smoke"
mkdir -p "$OBS_DIR"
"$BUILD_DIR"/src/workloads/testbed --episodes=3 \
    --metrics="$OBS_DIR/metrics.json" --trace="$OBS_DIR/trace.json" \
    >/dev/null
python3 -m json.tool "$OBS_DIR/metrics.json" >/dev/null
python3 -m json.tool "$OBS_DIR/trace.json" >/dev/null
echo "observability smoke: metrics + trace JSON OK"

# Fault-injection smoke: the same scenario under a lossy mailbox must
# still complete, with the ARQ shim actually recovering dropped mail
# (retransmits > 0, no giveups). Both runs are deterministic, so these
# assertions are exact, not flaky.
"$BUILD_DIR"/src/workloads/testbed --episodes=6 \
    --faults="mailbox.drop:p=0.2,mailbox.dup:p=0.1" \
    --metrics="$OBS_DIR/metrics_faults.json" >/dev/null
python3 - "$OBS_DIR/metrics_faults.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
v = lambda k: m[k]["value"]
assert v("fault.injected.mailbox.drop") > 0, "no drops injected"
assert v("os.recovery.mail.retransmits") > 0, "ARQ never retransmitted"
assert v("os.recovery.mail.duplicates_dropped") > 0, "dup not suppressed"
assert v("os.recovery.mail.giveups") == 0, "ARQ gave up on a mail"
EOF
# Zero-fault guard: without --faults no fault/recovery metric may even
# exist in the snapshot (the plane must be fully disarmed).
python3 - "$OBS_DIR/metrics.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
bad = [k for k in m
       if k.startswith("fault.") or k.startswith("os.recovery")]
assert not bad, f"fault plane armed without --faults: {bad}"
EOF
echo "fault smoke: injection + ARQ recovery + disarmed guard OK"

# Replication smoke: with 3 replicas, crashing the initial leader must
# trigger exactly one election and one rejoin+resync, keep a quorum
# throughout, and leave the service fully available (no degraded
# spawns). Deterministic, so the assertions are exact.
"$BUILD_DIR"/src/workloads/testbed --system=k2 --episodes=6 \
    --replicas=3 --faults="domain.crash:at=5ms:dom=1:len=2ms" \
    --metrics="$OBS_DIR/metrics_replica.json" >/dev/null
python3 - "$OBS_DIR/metrics_replica.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
v = lambda k: m["os.replica." + k]["value"]
assert v("elections") == 1, "leader crash must trigger one election"
assert v("election_oks") == 1, "election never completed"
assert v("rejoins") == 1, "revived replica never rejoined"
assert v("resyncs") == 1 and v("resync_pages") > 0, "no rejoin re-sync"
assert v("quorum_losses") == 0, "3-way group lost quorum on one crash"
assert v("degraded_spawns") == 0, "service degraded despite quorum"
assert v("vote_no_quorum") == 0, "a vote round failed quorum"
assert v("live") == 3, "crashed replica not live again at exit"
assert v("leader") != 0, "leadership never moved off the crashed replica"
EOF
# Replicated artifacts must stay byte-identical across shard counts
# and warm/cold fixture modes, crash and all.
REP_ARGS=(--episodes=3 --runs=4 --replicas=3
          --faults="domain.crash:at=5ms:dom=1:len=2ms")
"$BUILD_DIR"/src/workloads/testbed "${REP_ARGS[@]}" --jobs=4 \
    > "$OBS_DIR/replica_j4.txt"
"$BUILD_DIR"/src/workloads/testbed "${REP_ARGS[@]}" --jobs=1 \
    | diff - "$OBS_DIR/replica_j4.txt"
"$BUILD_DIR"/src/workloads/testbed "${REP_ARGS[@]}" --jobs=4 \
    --sweep=cold | diff - "$OBS_DIR/replica_j4.txt"
echo "replication smoke: election + handoff + rejoin re-sync +" \
     "artifact determinism OK"

# Snapshot smoke: the boot-once sweep mode (snap::Snapshot fork per
# cell) must produce byte-identical artifacts to cold boots, serial
# and sharded. Also covers the fork/--faults interaction: the
# injector's RNG streams rewind with the image.
SNAP_DIR="$BUILD_DIR/snap-smoke"
mkdir -p "$SNAP_DIR"
for jobs in 1 4; do
    "$BUILD_DIR"/bench/fig6a_dma_energy --sweep=warm --jobs="$jobs" \
        > "$SNAP_DIR/warm_$jobs.txt"
    "$BUILD_DIR"/bench/fig6a_dma_energy --sweep=cold --jobs="$jobs" \
        > "$SNAP_DIR/cold_$jobs.txt"
    diff "$SNAP_DIR/warm_$jobs.txt" "$SNAP_DIR/cold_$jobs.txt"
done
"$BUILD_DIR"/src/workloads/testbed --episodes=3 --runs=3 --sweep=warm \
    --faults="mailbox.drop:p=0.2" > "$SNAP_DIR/warm_faults.txt"
"$BUILD_DIR"/src/workloads/testbed --episodes=3 --runs=3 --sweep=cold \
    --faults="mailbox.drop:p=0.2" > "$SNAP_DIR/cold_faults.txt"
diff "$SNAP_DIR/warm_faults.txt" "$SNAP_DIR/cold_faults.txt"
echo "snapshot smoke: warm (fork) vs cold artifacts identical"

# Fleet smoke: a small population's report and JSON artifact must be
# byte-identical serial vs sharded and warm vs cold (the throughput
# line goes to stderr, so stdout diffs exactly), and the artifact must
# parse as JSON with the expected sketch series.
FLEET_DIR="$BUILD_DIR/fleet-smoke"
mkdir -p "$FLEET_DIR"
for jobs in 1 4; do
    "$BUILD_DIR"/src/workloads/fleet --devices=300 --hours=6 \
        --jobs="$jobs" --report="$FLEET_DIR/warm_$jobs.json" \
        > "$FLEET_DIR/warm_$jobs.txt" 2>/dev/null
done
diff "$FLEET_DIR/warm_1.txt" "$FLEET_DIR/warm_4.txt"
diff "$FLEET_DIR/warm_1.json" "$FLEET_DIR/warm_4.json"
"$BUILD_DIR"/src/workloads/fleet --devices=300 --hours=6 --jobs=4 \
    --sweep=cold --report="$FLEET_DIR/cold_4.json" \
    > "$FLEET_DIR/cold_4.txt" 2>/dev/null
diff "$FLEET_DIR/warm_1.txt" "$FLEET_DIR/cold_4.txt"
diff "$FLEET_DIR/warm_1.json" "$FLEET_DIR/cold_4.json"
python3 - "$FLEET_DIR/warm_1.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
for series in ("fleet.episode.energy_uj", "fleet.episode.latency_us",
               "fleet.device.energy_uj"):
    s = m[series]
    assert s["count"] > 0, f"{series} is empty"
    for tail in ("p50", "p90", "p99", "p999"):
        assert s[tail] is not None, f"{series} missing {tail}"
    assert s["p50"] <= s["p99"] <= s["max"], f"{series} tails disordered"
EOF
# Scale determinism smoke: a 100k-device population (hundreds of
# cells) must stay byte-identical across an adversarial shard count,
# and --diurnal must be deterministic too while --diurnal=0 must equal
# omitting the flag entirely.
"$BUILD_DIR"/src/workloads/fleet --devices=100000 --hours=1 --jobs=13 \
    > "$FLEET_DIR/big_13.txt" 2>/dev/null
"$BUILD_DIR"/src/workloads/fleet --devices=100000 --hours=1 --jobs=1 \
    2>/dev/null | diff - "$FLEET_DIR/big_13.txt"
"$BUILD_DIR"/src/workloads/fleet --devices=100000 --hours=1 --jobs=4 \
    --diurnal=0 2>/dev/null | diff - "$FLEET_DIR/big_13.txt"
"$BUILD_DIR"/src/workloads/fleet --devices=300 --hours=6 --jobs=13 \
    --diurnal=0.5 > "$FLEET_DIR/diurnal_13.txt" 2>/dev/null
"$BUILD_DIR"/src/workloads/fleet --devices=300 --hours=6 --jobs=1 \
    --diurnal=0.5 2>/dev/null | diff - "$FLEET_DIR/diurnal_13.txt"
if cmp -s "$FLEET_DIR/diurnal_13.txt" "$FLEET_DIR/warm_1.txt"; then
    echo "error: --diurnal=0.5 did not change the fleet report" >&2
    exit 1
fi
echo "fleet smoke: sharded/warm/cold artifacts identical, 100k-device" \
     "scale + diurnal determinism OK, JSON OK"

# Coherence protocol smoke: every zoo protocol (DESIGN.md §14) must
# boot the K2 testbed, run the fig6(b) workload, and emit
# byte-identical artifacts at any shard count and in warm vs cold
# fixture mode.
DSM_DIR="$BUILD_DIR/dsm-smoke"
mkdir -p "$DSM_DIR"
for proto in 2state 3state mesi moesi rac; do
    "$BUILD_DIR"/bench/fig6b_ext2_energy --dsm="$proto" --jobs=4 \
        > "$DSM_DIR/${proto}_j4.txt"
    "$BUILD_DIR"/bench/fig6b_ext2_energy --dsm="$proto" --jobs=1 \
        | diff - "$DSM_DIR/${proto}_j4.txt"
    "$BUILD_DIR"/bench/fig6b_ext2_energy --dsm="$proto" --jobs=13 \
        --sweep=cold | diff - "$DSM_DIR/${proto}_j4.txt"
done
# Distinct protocols must actually produce distinct results (guard
# against the flag silently falling back to the default). fig6(b)'s
# rounded MB/J columns don't resolve the difference, but the testbed's
# episode timings and DSM fault breakdown do.
"$BUILD_DIR"/src/workloads/testbed --episodes=6 --dsm=2state \
    > "$DSM_DIR/testbed_2state.txt"
"$BUILD_DIR"/src/workloads/testbed --episodes=6 --dsm=3state \
    > "$DSM_DIR/testbed_3state.txt"
if cmp -s "$DSM_DIR/testbed_2state.txt" "$DSM_DIR/testbed_3state.txt"
then
    echo "error: --dsm=3state produced the 2state results" >&2
    exit 1
fi
echo "coherence smoke: 5 protocols x jobs x warm/cold artifacts" \
     "identical, protocols distinct"
