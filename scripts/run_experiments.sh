#!/usr/bin/env bash
# Regenerate every paper table/figure plus the extension experiments.
#
# Usage: scripts/run_experiments.sh [build-dir]
#
# Builds (if needed), runs the test suite, then executes every bench
# binary, teeing the combined output to <build-dir>/experiments.txt.

set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD_DIR" -G Ninja >/dev/null
cmake --build "$BUILD_DIR"

echo "== running test suite =="
ctest --test-dir "$BUILD_DIR" --output-on-failure

OUT="$BUILD_DIR/experiments.txt"
: > "$OUT"
echo "== running benches (output: $OUT) =="
for b in "$BUILD_DIR"/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    case "$b" in *cmake*|*CMake*|*CTest*) continue ;; esac
    {
        echo
        echo "############ $(basename "$b") ############"
        "$b"
    } | tee -a "$OUT"
done

echo
echo "done; full output in $OUT"
