#!/usr/bin/env bash
# Regenerate every paper table/figure plus the extension experiments.
#
# Usage: scripts/run_experiments.sh [--jobs=N] [build-dir]
#
# Builds (if needed), runs the test suite, then executes every bench
# binary, teeing the combined output to <build-dir>/experiments.txt.
#
# --jobs=N shards each sweep binary's independent simulation cells
# across N host threads (default: all of them, $(nproc)). Output is
# byte-identical at any thread count -- see DESIGN.md §8.

set -euo pipefail

JOBS="$(nproc)"
BUILD_DIR=build
for arg in "$@"; do
    case "$arg" in
        --jobs=*) JOBS="${arg#--jobs=}" ;;
        *) BUILD_DIR="$arg" ;;
    esac
done

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

# Prefer Ninja for fresh trees, but reuse whatever generator an
# existing build dir was configured with.
GEN=()
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
    GEN=(-G Ninja)
fi
cmake -B "$BUILD_DIR" "${GEN[@]}" >/dev/null
cmake --build "$BUILD_DIR"

echo "== running test suite =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

# Sweep binaries ported to the parallel harness (workloads/sweep.h);
# the rest are single-scenario and take no flags.
supports_jobs() {
    case "$(basename "$1")" in
        fig6a_dma_energy|fig6b_ext2_energy|fig6b_sd_variant| \
        fig6c_udp_energy|table6_dma_concurrent|ablation_arch_features| \
        ablation_dsm_protocol|ablation_fault_tolerance| \
        ablation_shared_allocator|extension_ndomain) return 0 ;;
        *) return 1 ;;
    esac
}

OUT="$BUILD_DIR/experiments.txt"
: > "$OUT"
echo "== running benches (output: $OUT, --jobs=$JOBS) =="
# Per-binary wall-clock summary (stderr only, never in $OUT: artifact
# bytes must not depend on host timing).
TIMES=""
for b in "$BUILD_DIR"/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    case "$b" in *cmake*|*CMake*|*CTest*) continue ;; esac
    ARGS=()
    if supports_jobs "$b"; then
        ARGS=(--jobs="$JOBS")
    fi
    START=$(date +%s.%N)
    {
        echo
        echo "############ $(basename "$b") ############"
        "$b" "${ARGS[@]}"
    } | tee -a "$OUT"
    ELAPSED=$(date +%s.%N | awk -v s="$START" '{printf "%.1f", $1 - s}')
    TIMES="$TIMES$(printf '%8ss  %s' "$ELAPSED" "$(basename "$b")")"$'\n'
    echo "-- $(basename "$b"): ${ELAPSED}s" >&2
done

# Table 5 again, broken out per coherence protocol (DESIGN.md §14).
{
    echo
    echo "############ table5_dsm_fault --dsm=all ############"
    "$BUILD_DIR"/bench/table5_dsm_fault --dsm=all
} | tee -a "$OUT"

echo
echo "== per-binary wall clock ==" >&2
printf '%s' "$TIMES" >&2
echo "done; full output in $OUT"
